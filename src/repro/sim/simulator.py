"""The simulation driver.

Builds a system from a :class:`repro.sim.config.SystemConfig`, attaches a
scheme, and drives one synthetic trace per core through it. Cores are
interleaved by always advancing the one with the earliest clock, so shared
resources (LLC, NVM channels) see a roughly time-ordered request stream.

Epoch boundaries fire when the system-wide instruction count crosses
multiples of ``epoch_instructions * n_cores`` (for a single core this is
exactly the paper's instruction-count epochs); overflow-forced commits
happen inside the schemes' ``on_store`` hooks. Scheduled-commit stalls are
stop-the-world (charged to every core); overflow stalls are charged to the
offending core, with the other cores slowed naturally by NVM backpressure.

Crash injection: pass ``crash_at_instructions`` to stop mid-run, or a
:class:`repro.fault.CrashPlan` as ``crash_plan`` to power-fail at a
*semantic* event (mid-undo-flush, eviction-before-log-write, mid-ACS
scan, …); then call :meth:`Simulation.crash_and_recover` to lose all
volatile state, run the scheme's recovery, and get back the recovered
image together with the reference snapshot it must match.
"""

import heapq
from bisect import bisect_left

import numpy as np

from repro.baselines import Frm, IdealNvm, Journaling, ShadowPaging, ThyNvm
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.line import LineState
from repro.cache.miss_engine import build_engine as build_miss_engine
from repro.cache.miss_engine import build_engines as build_miss_engines
from repro.common.errors import ConfigurationError
from repro.common.stats import StatCounters
from repro.core.picl import PiclScheme
from repro.cpu.core import CoreState
from repro.fault.plan import CrashSignal
from repro.cpu.system import System
from repro.mem.controller import MemoryController
from repro.sim.results import SimulationResult
from repro.trace.profiles import get_profile
from repro.trace.synthetic import make_trace

#: Address-space stride between cores (programs never share lines).
_CORE_ADDR_STRIDE = 1 << 40

#: Columnar interpreter: shortest all-fast stretch (in references *and* in
#: coalescing groups) worth bulk application; anything shorter replays
#: through the scalar body, whose run-coalescing covers it in O(groups).
_BULK_MIN = 8

#: Bulk stretches spanning at least this many coalescing groups use the
#: numpy reductions in bulk_span; sparser ones use its plain-Python
#: group-at-a-time path (less per-call setup).
_NUMPY_BULK_MIN = 64

#: The multi-core walk bulk-applies shorter stretches than the
#: single-core one: heap turns chop consumption into a handful of
#: references and the shared LLC's back-invalidations scatter misses, so
#: the typical all-fast stretch of an 8-core mix is 3-6 references —
#: still cheaper as one cum-arithmetic application than per-reference
#: replay, because the turn machinery (not the classification) dominates
#: the alternative.
_BULK_MIN_MC = 4

#: Classification window bounds: the lookahead doubles from the initial
#: size while windows stay fully fast and productive, and halves when
#: bulk application comes up short.
_WINDOW_INIT = 256
_WINDOW_MIN = 128
_WINDOW_MAX = 4096

#: After this many consecutive unproductive windows the interpreter
#: disengages into a scalar burst before probing again, so miss-heavy
#: phases pay ~zero classification overhead. Bursts start at
#: _DISENGAGE_REFS references and double up to _DISENGAGE_MAX while
#: re-probes keep failing (geometric backoff), so a workload the columnar
#: path never helps converges to pure scalar speed while still noticing a
#: phase change within ~_DISENGAGE_MAX references.
_SHORT_LIMIT = 2
_DISENGAGE_REFS = 4096
_DISENGAGE_MAX = 65536

SCHEME_NAMES = ("ideal", "journaling", "shadow", "frm", "thynvm", "picl")


class _TraceCursor:
    """Positional reader over a trace's chunks.

    Indexes the chunk's parallel gap/addr/write lists directly so the
    interleaved multi-core loop never materializes a per-reference tuple.
    """

    __slots__ = ("_chunks", "gaps", "addrs", "writes", "pos", "n")

    def __init__(self, trace):
        self._chunks = trace.chunks()
        self.gaps = self.addrs = self.writes = ()
        self.pos = 0
        self.n = 0

    def advance(self):
        """Load the next chunk; returns False when the trace is exhausted."""
        chunk = next(self._chunks, None)
        if chunk is None:
            return False
        self.gaps = chunk.gaps
        self.addrs = chunk.addrs
        self.writes = chunk.writes
        self.pos = 0
        self.n = len(chunk.gaps)
        return True


class _CoreVecState:
    """Per-core trace position, mirror bindings, and window tuning for the
    horizon-batched multi-core interpreter (_run_multi_core_vector).

    One instance per core: the chunk's parallel arrays and batch metadata,
    the core's private L1 + tag-mirror bindings, the per-chunk miss-chain
    drain, and the self-tuning window state (each core sees its own
    workload phase, so window sizes and disengage bursts tune per core).
    """

    __slots__ = (
        "chunks", "engine", "l1", "vec", "tags2d", "eids2d", "removed",
        "l1_tags", "l1_sets", "l1_dirty", "shift", "mask", "lat",
        "gaps", "addrs", "writes", "cum", "run_ends", "rcum", "wcum",
        "np_addrs", "np_writes", "n", "pos", "drain",
        "window", "shorts", "scalar_budget", "burst_len", "productive",
        "win_end", "win_wb", "win_bad", "win_nbad", "win_bptr",
        "win_fpos", "win_fast", "win_bulked", "win_dense",
        "win_serial", "win_sfilter",
        "gen", "gen_i", "gen_stop", "gen_live", "gen_serial", "gen_sfilter",
    )

    def __init__(self, trace, l1, engine):
        self.chunks = trace.chunks()
        self.engine = engine
        self.l1 = l1
        vec = l1._vec
        self.vec = vec
        self.tags2d = vec.tags2d
        self.eids2d = vec.eids2d
        self.removed = vec.removed
        self.l1_tags = l1._tags
        self.l1_sets = l1._sets
        self.l1_dirty = l1._dirty_lines
        self.shift = l1._line_shift
        self.mask = l1._set_mask
        self.lat = l1.hit_latency
        self.n = 0
        self.pos = 0
        self.drain = None
        self.window = _WINDOW_INIT
        self.shorts = 0
        self.scalar_budget = 0
        self.burst_len = _DISENGAGE_REFS
        self.productive = False
        # The live classified window (see run_span): turns are usually
        # far shorter than a window, so classification state persists
        # across turns and is consumed incrementally.
        self.win_end = 0
        self.win_wb = 0
        self.win_bad = None
        self.win_nbad = 0
        self.win_bptr = 0
        self.win_fpos = None
        self.win_fast = None
        self.win_bulked = 0
        self.win_dense = False
        self.win_serial = -1
        self.win_sfilter = None
        # The parked burst drain generator (see run_span and the driver
        # hot path): its whole local frame survives across turns; only
        # each turn's budget is sent in. The generator itself maintains
        # pos / gen_i / scalar_budget / gen_live at every park point and
        # owns its segment bound, so all shared state is written back at
        # every yield and an invalidated generator just gets close()d.
        self.gen = None
        self.gen_i = 0
        self.gen_stop = 0
        self.gen_live = False
        self.gen_serial = -1
        self.gen_sfilter = None
    def load_chunk(self):
        """Bind the next chunk's arrays; False when the trace is done."""
        chunk = next(self.chunks, None)
        if chunk is None:
            return False
        chunk.ensure_metadata()
        chunk.ensure_arrays()
        self.gaps = chunk.gaps
        self.addrs = chunk.addrs
        self.writes = chunk.writes
        self.cum = chunk.cum_instructions
        self.run_ends = chunk.run_ends
        self.rcum = chunk.run_cum
        self.wcum = chunk.write_cum
        self.np_addrs = chunk.np_addrs
        self.np_writes = chunk.np_writes
        self.n = len(chunk.gaps)
        self.pos = 0
        self.win_end = 0
        if self.gen is not None:
            self.gen.close()
            self.gen = None
        if self.engine is not None:
            self.drain = self.engine.make_drain(
                self.gaps,
                self.addrs,
                self.writes,
                self.cum,
                self.run_ends,
                self.wcum,
            )
        return True


def build_scheme(name, system, config):
    """Instantiate a scheme by name with the config's parameters."""
    if name == "ideal":
        return IdealNvm(system)
    if name == "journaling":
        return Journaling(
            system, config.journal_table_entries, config.table_assoc
        )
    if name == "shadow":
        return ShadowPaging(
            system, config.shadow_table_entries, config.table_assoc
        )
    if name == "frm":
        return Frm(system)
    if name == "thynvm":
        return ThyNvm(
            system,
            config.thynvm_block_entries,
            config.thynvm_page_entries,
            config.table_assoc,
        )
    if name == "picl":
        return PiclScheme(system, config.picl)
    raise ConfigurationError(
        "unknown scheme %r; known: %s" % (name, ", ".join(SCHEME_NAMES))
    )


class Simulation:
    """One system + one scheme + one trace per core.

    ``shared_memory=False`` (the default, the paper's multiprogram rate
    mode) gives every core a disjoint address space; ``True`` makes all
    cores address one shared working set — a multithreaded workload whose
    cross-core stores exercise coherence, undo forwarding, and recovery
    under sharing.
    """

    def __init__(
        self,
        config,
        scheme_name,
        benchmarks,
        n_instructions,
        seed=1234,
        shared_memory=False,
    ):
        if isinstance(benchmarks, str):
            benchmarks = [benchmarks]
        if len(benchmarks) != config.n_cores:
            raise ConfigurationError(
                "%d benchmarks for %d cores" % (len(benchmarks), config.n_cores)
            )
        self.shared_memory = shared_memory
        self.config = config
        self.scheme_name = scheme_name
        self.benchmarks = list(benchmarks)
        self.n_instructions = n_instructions
        self.stats = StatCounters()
        self.controller = MemoryController(config.nvm, self.stats)
        self.hierarchy = CacheHierarchy(
            self.controller,
            n_cores=config.n_cores,
            l1_size=config.l1_size,
            l1_assoc=config.l1_assoc,
            l1_latency=config.l1_latency,
            l2_size=config.l2_size,
            l2_assoc=config.l2_assoc,
            l2_latency=config.l2_latency,
            llc_size_per_core=config.llc_size_per_core,
            llc_assoc=config.llc_assoc,
            llc_latency=config.llc_latency,
            line_size=config.line_size,
            store_miss_factor=config.store_miss_factor,
            stats=self.stats,
        )
        self.cores = [CoreState(i) for i in range(config.n_cores)]
        self.system = System(
            self.controller,
            self.hierarchy,
            self.cores,
            stats=self.stats,
            epoch_handler_cycles=config.epoch_handler_cycles,
            track_reference=config.track_reference,
            reference_depth=config.reference_depth,
        )
        self.scheme = build_scheme(scheme_name, self.system, config)
        self.traces = []
        for core_id, name in enumerate(self.benchmarks):
            profile = config.scale_profile(get_profile(name))
            addr_base = 0 if shared_memory else core_id * _CORE_ADDR_STRIDE
            self.traces.append(
                make_trace(
                    profile,
                    n_instructions,
                    seed=seed + core_id * 101,
                    addr_base=addr_base,
                )
            )
        self.crashed = False
        #: The semantic crash site that fired (None for clean runs and
        #: instruction-count crashes).
        self.crash_site = None
        self._ran = False

    # ------------------------------------------------------------------
    # the main loop
    # ------------------------------------------------------------------

    def run(self, crash_at_instructions=None, crash_plan=None):
        """Drive the traces to completion (or to the crash point).

        ``crash_plan`` injects a semantic-event crash (see
        :mod:`repro.fault.plan`): instruction-count plans fold into
        ``crash_at_instructions``; site plans install hooks on the
        hierarchy/scheme and power-fail by raising ``CrashSignal`` from
        inside the crash window. A plan whose site is never reached lets
        the run complete (check ``crash_plan.fired``).
        """
        if self._ran:
            raise ConfigurationError("a Simulation object runs exactly once")
        self._ran = True
        if crash_plan is not None:
            if crash_plan.at_instructions is not None:
                if crash_at_instructions is None:
                    crash_at_instructions = crash_plan.at_instructions
                else:
                    crash_at_instructions = min(
                        crash_at_instructions, crash_plan.at_instructions
                    )
            else:
                crash_plan.install(self)
        try:
            if len(self.cores) == 1:
                # REPRO_VECTOR (default on) attaches a numpy tag mirror to
                # the single core's L1 at construction; its presence
                # selects the columnar interpreter. REPRO_VECTOR=0 leaves
                # it detached and restores the scalar loop.
                if self.hierarchy._l1[0]._vec is not None:
                    self._run_single_core_vector(crash_at_instructions)
                else:
                    self._run_single_core(crash_at_instructions)
            else:
                # Same selector per core: REPRO_VECTOR (with the
                # multi-core-specific REPRO_VECTOR_MC sub-switch) attaches
                # a tag mirror to every private L1; their presence selects
                # the horizon-batched interpreter.
                if self.hierarchy._l1[0]._vec is not None:
                    self._run_multi_core_vector(crash_at_instructions)
                else:
                    self._run_multi_core(crash_at_instructions)
            if not self.crashed:
                stall = self.scheme.finalize(self.system.max_cycle())
                self.system.broadcast_stall(stall)
        except CrashSignal as signal:
            self.crashed = True
            self.crash_site = signal.site
        return self.result()

    def _run_single_core(self, crash_at_instructions):
        """The dominant case: one core, batched over boundary-free segments.

        Each chunk is segmented at the epoch/crash boundaries up front
        (via its cumulative instruction counts, ``bisect`` against the
        next boundary), so the inner loop runs check-free: no per-reference
        epoch or crash comparison. Within a segment, a run of consecutive
        references to one line (``chunk.run_ends``) is dispatched through
        :meth:`repro.cache.hierarchy.CacheHierarchy.access_repeat` — the
        coalescing fast path that charges ``count × hit_latency`` when the
        repeats provably cannot change cache or scheme state, and returns
        None (forcing exact one-by-one replay) when they could. Instruction
        counters are synced at segment boundaries only; nothing observes
        them in between. Results are bit-identical to the per-reference
        loop (asserted by tests/sim/test_batching.py).
        """
        system = self.system
        scheme = self.scheme
        hierarchy = self.hierarchy
        access = hierarchy.access
        access_repeat = hierarchy.access_repeat
        # The L1 read-hit path of ``access`` is inlined below (same shape,
        # same counters) — it is the single most common operation of a run,
        # and the call itself is measurable at this volume.
        l1 = hierarchy._l1[0]
        l1_tags = l1._tags
        l1_sets = l1._sets
        l1_shift = l1._line_shift
        l1_mask = l1._set_mask
        l1_latency = l1.hit_latency
        l1_hits = hierarchy._l1_hits
        loads = hierarchy._loads
        core = self.cores[0]
        epoch_span = self.config.epoch_instructions
        next_epoch = epoch_span
        track = system.track_reference
        arch_image = system.arch_image
        total = system.total_instructions
        crash = crash_at_instructions

        for chunk in self.traces[0].chunks():
            chunk.ensure_metadata()
            gaps = chunk.gaps
            addrs = chunk.addrs
            writes = chunk.writes
            cum = chunk.cum_instructions
            run_ends = chunk.run_ends
            wcum = chunk.write_cum
            n = len(gaps)
            base = total
            index = 0
            while index < n:
                # The segment ends at (and includes) the first reference
                # whose retirement crosses the next epoch or crash point.
                limit = next_epoch - base
                if crash is not None and crash - base < limit:
                    limit = crash - base
                seg_end = bisect_left(cum, limit, index) + 1
                if seg_end > n:
                    seg_end = n
                while index < seg_end:
                    gap = gaps[index]
                    cycle = core.cycle + gap
                    addr = addrs[index]
                    if writes[index]:
                        token = system._next_token
                        system._next_token = token + 1
                        wait = access(0, addr, True, token, cycle)
                        if track:
                            arch_image[addr] = token
                    else:
                        line = l1_tags.get(addr)
                        if line is not None:
                            cache_set = l1_sets[(addr >> l1_shift) & l1_mask]
                            if cache_set[0] is not line:
                                cache_set.remove(line)
                                cache_set.insert(0, line)
                            l1_hits.value += 1
                            loads.value += 1
                            wait = l1_latency
                        else:
                            wait = access(0, addr, False, 0, cycle)
                    core.cycle = cycle + wait
                    core.mem_stall_cycles += wait
                    run_end = run_ends[index]
                    if run_end > seg_end:
                        run_end = seg_end
                    index += 1
                    if run_end > index:
                        # Tail of a same-line run: after the access above
                        # the line is L1-resident at MRU, so the repeats
                        # may coalesce. Tokens are only consumed (and the
                        # reference image only updated) once the fast path
                        # commits to the whole tail.
                        k = run_end - index
                        kw = wcum[run_end - 1] - wcum[index - 1]
                        if kw:
                            last_token = system._next_token + kw - 1
                            wait = access_repeat(
                                0, addr, k - kw, kw, last_token, core.cycle
                            )
                            if wait is None:
                                continue
                            system._next_token += kw
                            if track:
                                arch_image[addr] = last_token
                        else:
                            wait = access_repeat(0, addr, k, 0, 0, core.cycle)
                            if wait is None:
                                continue
                        core.cycle += (cum[run_end - 1] - cum[index - 1]) - k + wait
                        core.mem_stall_cycles += wait
                        index = run_end
                total = base + cum[index - 1]
                if total >= next_epoch:
                    system.total_instructions = total
                    core.instructions = total
                    stall = scheme.on_epoch_boundary(core.cycle)
                    system.broadcast_stall(stall)
                    next_epoch += epoch_span
                if crash is not None and total >= crash:
                    system.total_instructions = total
                    core.instructions = total
                    self.crashed = True
                    return
            system.total_instructions = total
            core.instructions = total
        core.finished = True

    def _run_single_core_vector(self, crash_at_instructions):
        """Columnar interpreter: classify lookahead windows array-at-a-time.

        Builds on the segmented loop above but replaces its per-reference
        walk. Within each boundary-free segment the loop repeatedly:

        1. **Classifies a window.** Set indices and an L1 tag probe for the
           next ``window`` references in numpy against the L1's live tag
           mirror (:class:`repro.cache.vector_mirror.L1TagMirror`). A
           reference is *fast* when it is a classified L1 hit the scheme
           cannot observe: every load hit, plus store hits the scheme's
           ``vector_store_filter`` declares silent (all of them, none, or
           only lines tagged with a given EID — PiCL's same-epoch branch).
           Everything else is *residual*.
        2. **Bulk-applies all-fast stretches.** A stretch of consecutive
           fast references is applied at once: cycle/stall arithmetic from
           the cumulative metadata, bulk counter bumps, MRU reordering in
           last-touch order, last-write tokens per line — exactly the
           state the references would have left one by one. Applying a
           fast stretch cannot change residency or EIDs, so it can never
           invalidate its own classification.
        3. **Replays residuals exactly** through the verbatim scalar body,
           so misses, evictions, undo logging, and crash-plan sites behave
           identically. A residual's evictions CAN invalidate the rest of
           the window (a classified hit whose line just left — the
           stale-positive direction; see vector_mirror's docstring), so the
           mirror logs removals and the loop rescans the remaining window
           for any victim, reclassifying from the current position when one
           appears. Residual side effects can also flip references the
           *other* way (a cross-epoch store retags its line silent); those
           stay residual and replay exactly, which is merely conservative.

        The loop is self-tuning: the window doubles while classification
        keeps paying off (long fast prefixes) and shrinks when prefixes
        come up short; after a few consecutive short prefixes it disengages
        into a pure scalar burst before probing again, so miss-heavy
        workloads pay near-zero classification overhead.

        Bit-identical to the scalar loop — same counters, tokens, cycles,
        recovery images — asserted by tests/sim/test_vectorized.py.
        """
        system = self.system
        scheme = self.scheme
        hierarchy = self.hierarchy
        access = hierarchy.access
        access_repeat = hierarchy.access_repeat
        l1 = hierarchy._l1[0]
        vec = l1._vec
        l1_tags = l1._tags
        l1_sets = l1._sets
        l1_dirty = l1._dirty_lines
        l1_shift = l1._line_shift
        l1_mask = l1._set_mask
        l1_latency = l1.hit_latency
        l1_hits = hierarchy._l1_hits
        loads = hierarchy._loads
        stores = hierarchy._stores
        modified = LineState.MODIFIED
        tags2d = vec.tags2d
        eids2d = vec.eids2d
        removed = vec.removed
        core = self.cores[0]
        epoch_span = self.config.epoch_instructions
        next_epoch = epoch_span
        track = system.track_reference
        arch_image = system.arch_image
        total = system.total_instructions
        crash = crash_at_instructions
        bulk_min = _BULK_MIN
        window = _WINDOW_INIT
        shorts = 0
        scalar_budget = 0
        burst_len = _DISENGAGE_REFS
        productive = False
        dbg = getattr(self, "_vec_debug", None)
        # Batched miss-chain engine (repro.cache.miss_engine): residual
        # spans drain through one fused loop instead of the per-miss call
        # chain. None when ineligible (REPRO_BATCH_MISS=0, multi-channel
        # NVM, DRAM cache, foreign sink) — every call site below then
        # falls back to scalar_span, byte-identically.
        engine = build_miss_engine(self)

        for chunk in self.traces[0].chunks():
            chunk.ensure_metadata()
            chunk.ensure_arrays()
            gaps = chunk.gaps
            addrs = chunk.addrs
            writes = chunk.writes
            cum = chunk.cum_instructions
            run_ends = chunk.run_ends
            rcum = chunk.run_cum
            wcum = chunk.write_cum
            np_addrs = chunk.np_addrs
            np_writes = chunk.np_writes
            n = len(gaps)
            base = total

            def scalar_span(
                i,
                stop,
                seg_end,
                # Default-arg binding: the body runs per reference, and
                # locals are materially faster than closure derefs there.
                gaps=gaps,
                addrs=addrs,
                writes=writes,
                cum=cum,
                run_ends=run_ends,
                wcum=wcum,
                core=core,
                system=system,
                access=access,
                access_repeat=access_repeat,
                track=track,
                arch_image=arch_image,
                l1_tags=l1_tags,
                l1_sets=l1_sets,
                l1_shift=l1_shift,
                l1_mask=l1_mask,
                l1_latency=l1_latency,
                l1_hits=l1_hits,
                loads=loads,
            ):
                """The verbatim scalar body over [i, stop); returns new i.

                Run-coalescing tails may legitimately advance past ``stop``
                (never past ``seg_end``) — the caller's window bookkeeping
                skips anything already consumed.
                """
                while i < stop:
                    gap = gaps[i]
                    cycle = core.cycle + gap
                    addr = addrs[i]
                    if writes[i]:
                        token = system._next_token
                        system._next_token = token + 1
                        wait = access(0, addr, True, token, cycle)
                        if track:
                            arch_image[addr] = token
                    else:
                        line = l1_tags.get(addr)
                        if line is not None:
                            cache_set = l1_sets[(addr >> l1_shift) & l1_mask]
                            if cache_set[0] is not line:
                                cache_set.remove(line)
                                cache_set.insert(0, line)
                            l1_hits.value += 1
                            loads.value += 1
                            wait = l1_latency
                        else:
                            wait = access(0, addr, False, 0, cycle)
                    core.cycle = cycle + wait
                    core.mem_stall_cycles += wait
                    run_end = run_ends[i]
                    if run_end > seg_end:
                        run_end = seg_end
                    i += 1
                    if run_end > i:
                        k = run_end - i
                        kw = wcum[run_end - 1] - wcum[i - 1]
                        if kw:
                            last_token = system._next_token + kw - 1
                            wait = access_repeat(
                                0, addr, k - kw, kw, last_token, core.cycle
                            )
                            if wait is None:
                                continue
                            system._next_token += kw
                            if track:
                                arch_image[addr] = last_token
                        else:
                            wait = access_repeat(0, addr, k, 0, 0, core.cycle)
                            if wait is None:
                                continue
                        core.cycle += (
                            cum[run_end - 1] - cum[i - 1]
                        ) - k + wait
                        core.mem_stall_cycles += wait
                        i = run_end
                return i

            def bulk_span(
                s,
                r,
                nruns,
                # Same default-arg binding as scalar_span: the group loops
                # below run once per coalescing group.
                addrs=addrs,
                cum=cum,
                run_ends=run_ends,
                wcum=wcum,
                core=core,
                system=system,
                scheme=scheme,
                track=track,
                arch_image=arch_image,
                l1_tags=l1_tags,
                l1_sets=l1_sets,
                l1_dirty=l1_dirty,
                l1_shift=l1_shift,
                l1_mask=l1_mask,
                l1_latency=l1_latency,
                l1_hits=l1_hits,
                loads=loads,
                stores=stores,
                modified=modified,
            ):
                """Apply the all-fast stretch [s, r) at once.

                The aggregate arithmetic (cycles, stalls, counters, token
                range) is O(1) off the cumulative metadata; per-line state
                (MRU order, last-write token, dirty bit) is applied once
                per *distinct* line. The Python path iterates coalescing
                groups (``run_ends`` jumps), never references, so its cost
                matches the scalar loop's O(runs) — the numpy reductions
                take over above a run-count crossover.
                """
                k = r - s
                prev_cum = cum[s - 1] if s else 0
                base_w = wcum[s - 1] if s else 0
                nw = wcum[r - 1] - base_w
                core.cycle += (cum[r - 1] - prev_cum) - k + k * l1_latency
                core.mem_stall_cycles += k * l1_latency
                l1_hits.bump(k)
                loads.bump(k - nw)
                if nruns < _NUMPY_BULK_MIN:
                    # MRU: one move-to-front per distinct line, ascending
                    # last-touch, so the final order matches k individual
                    # touches (re-inserting moves a key to the end).
                    order = {}
                    j = s
                    while j < r:
                        addr = addrs[j]
                        if addr in order:
                            del order[addr]
                        order[addr] = None
                        j = run_ends[j]
                    for addr in order:
                        line = l1_tags[addr]
                        cache_set = l1_sets[(addr >> l1_shift) & l1_mask]
                        if cache_set[0] is not line:
                            cache_set.remove(line)
                            cache_set.insert(0, line)
                    if nw:
                        nt = system._next_token
                        system._next_token = nt + nw
                        # A line's surviving token is its last store in the
                        # stretch: the last write of the last run that
                        # stores to it, whose ordinal is the cumulative
                        # write count at that run's end (intermediates are
                        # unobservable — same argument as access_repeat's
                        # last_token). Dict insertion order = first-store
                        # order, matching the dirty dict's scalar order.
                        last = {}
                        j = s
                        prev_w = base_w
                        while j < r:
                            e = run_ends[j]
                            if e > r:
                                e = r
                            wend = wcum[e - 1]
                            if wend != prev_w:
                                last[addrs[j]] = nt + (wend - base_w) - 1
                                prev_w = wend
                            j = e
                        for addr, tok in last.items():
                            line = l1_tags[addr]
                            line.token = tok
                            if not line._dirty:
                                line._dirty = True
                                l1_dirty[addr] = line
                            line.state = modified
                            if track:
                                arch_image[addr] = tok
                        stores.bump(nw)
                        scheme.on_store_bulk(nw)
                    return
                a_seg = np_addrs[s:r]
                ru, ridx = np.unique(a_seg[::-1], return_index=True)
                for addr in ru[np.argsort(ridx)[::-1]].tolist():
                    line = l1_tags[addr]
                    cache_set = l1_sets[(addr >> l1_shift) & l1_mask]
                    if cache_set[0] is not line:
                        cache_set.remove(line)
                        cache_set.insert(0, line)
                if nw:
                    nt = system._next_token
                    system._next_token = nt + nw
                    waddr = a_seg[np.flatnonzero(np_writes[s:r])]
                    wu, widx = np.unique(waddr[::-1], return_index=True)
                    last_tok = (nt + (nw - 1) - widx).tolist()
                    wu_list = wu.tolist()
                    first_idx = np.unique(waddr, return_index=True)[1]
                    for j in np.argsort(first_idx).tolist():
                        addr = wu_list[j]
                        tok = last_tok[j]
                        line = l1_tags[addr]
                        line.token = tok
                        if not line._dirty:
                            line._dirty = True
                            l1_dirty[addr] = line
                        line.state = modified
                        if track:
                            arch_image[addr] = tok
                    stores.bump(nw)
                    scheme.on_store_bulk(nw)

            if engine is not None:
                drain = engine.make_drain(gaps, addrs, writes, cum, run_ends, wcum)

            index = 0
            while index < n:
                limit = next_epoch - base
                if crash is not None and crash - base < limit:
                    limit = crash - base
                seg_end = bisect_left(cum, limit, index) + 1
                if seg_end > n:
                    seg_end = n
                # ``is True``/``is False`` below: an EID filter value of 0
                # or 1 must not be mistaken for the booleans. The filter is
                # fixed within a segment (the SystemEID only moves at
                # boundaries, which are segment ends by construction).
                sfilter = scheme.vector_store_filter()
                i = index
                while i < seg_end:
                    if scalar_budget > 0:
                        stop = i + scalar_budget
                        if stop > seg_end:
                            stop = seg_end
                        if engine is not None:
                            # The drain maintains the mirror queues at its
                            # inlined fill/evict sites for free, so bursts
                            # keep the mirror attached — no stale rebuild
                            # at the next sync.
                            ni = drain(i, stop, seg_end, sfilter)
                        else:
                            # Detach the mirror for the burst: the hot
                            # cache paths then pay zero queue-append tax
                            # (byte-identical to REPRO_VECTOR=0), and the
                            # next sync rebuilds from the live tags
                            # instead of replaying what the burst changed.
                            l1._vec = None
                            try:
                                ni = scalar_span(i, stop, seg_end)
                            finally:
                                l1._vec = vec
                                vec.stale = True
                        scalar_budget -= ni - i
                        if dbg is not None:
                            dbg["burst_refs"] += ni - i
                        i = ni
                        continue
                    if seg_end - i < bulk_min:
                        if engine is not None:
                            i = drain(i, seg_end, seg_end, sfilter)
                        else:
                            i = scalar_span(i, seg_end, seg_end)
                        break
                    # -- classify the next window against the mirror,
                    #    reconciled here (and only here) with the live tags
                    vec.sync(l1_tags)
                    wb = i
                    we = wb + window
                    if we > seg_end:
                        we = seg_end
                    a_win = np_addrs[wb:we]
                    sidx = (a_win >> l1_shift) & l1_mask
                    eq = tags2d[sidx] == a_win[:, None]
                    hit = eq.any(axis=1)
                    if sfilter is True:
                        fast = hit
                    elif sfilter is False:
                        fast = hit & ~np_writes[wb:we]
                    else:
                        fast = np.where(
                            np_writes[wb:we],
                            (eq & (eids2d[sidx] == sfilter)).any(axis=1),
                            hit,
                        )
                    bad = (np.flatnonzero(~fast) + wb).tolist()
                    n_bad = len(bad)
                    if engine is not None and n_bad * 4 >= we - wb:
                        # Residual-dense window (≥25%): the walk's bulk
                        # stretches cannot pay for themselves between
                        # misses, so hand the whole window to the drain
                        # (exact path, no stale-positive bookkeeping
                        # needed). Counted as unproductive below, which
                        # steers persistently miss-heavy phases into
                        # drain bursts with zero classification cost.
                        i = drain(wb, we, seg_end, sfilter)
                        removed.clear()
                        bulked_runs = 0
                    else:
                        # Fast positions (absolute) and their addresses,
                        # for the stale-positive guard below: only a
                        # victim that the *remaining fast* part of the
                        # window references can invalidate the
                        # classification — residual positions replay
                        # exactly regardless.
                        fpos = np.flatnonzero(fast) + wb
                        fast_addrs = a_win[fast]
                        removed.clear()
                        # -- walk the window: bulk fast stretches, replay
                        #    residuals, revalidate after each residual
                        bptr = 0
                        bulked_runs = 0
                        while i < we:
                            while bptr < n_bad and bad[bptr] < i:
                                bptr += 1
                            nxt = bad[bptr] if bptr < n_bad else we
                            if nxt - i >= bulk_min:
                                # Size the stretch in coalescing groups,
                                # not references: the scalar loop replays
                                # a same-line run in O(1), so a long but
                                # run-sparse stretch is cheaper replayed.
                                nruns = rcum[nxt - 1] - (rcum[i - 1] if i else 0)
                                if nruns >= bulk_min:
                                    bulk_span(i, nxt, nruns)
                                    bulked_runs += nruns
                                    i = nxt
                                    if i >= we:
                                        break
                            stop = nxt + 1
                            if stop > seg_end:
                                stop = seg_end
                            if engine is not None:
                                i = drain(i, stop, seg_end, sfilter)
                            else:
                                i = scalar_span(i, stop, seg_end)
                            if removed:
                                # Stale-positive guard: a classified-fast
                                # position whose line was just evicted is
                                # no longer safe to bulk — demote it to
                                # residual by splicing it into the bad
                                # list (demotion is always safe:
                                # residuals replay exactly). Re-adds need
                                # no check — a classified miss replays
                                # exactly anyway.
                                if i < we:
                                    j = int(np.searchsorted(fpos, i))
                                    if j < len(fpos):
                                        tail = fast_addrs[j:]
                                        stale = None
                                        for victim in removed:
                                            m = tail == victim
                                            if m.any():
                                                if stale is None:
                                                    stale = m
                                                else:
                                                    stale |= m
                                        if stale is not None:
                                            extra = fpos[j:][stale].tolist()
                                            bad = sorted(bad[bptr:] + extra)
                                            n_bad = len(bad)
                                            bptr = 0
                                removed.clear()
                    # -- self-tuning: how much of the window's coalescing
                    #    work was actually bulk-applied?
                    creached = rcum[i - 1] - (rcum[wb - 1] if wb else 0)
                    if dbg is not None:
                        dbg["windows"] += 1
                        dbg["win_refs"] += i - wb
                        dbg["win_runs"] += creached
                        dbg["bulked_runs"] += bulked_runs
                        dbg["win_bad"] += n_bad
                    if bulked_runs * 2 >= creached:
                        shorts = 0
                        productive = True
                        burst_len = _DISENGAGE_REFS
                        if n_bad == 0 and window < _WINDOW_MAX:
                            window *= 2
                    else:
                        if window > _WINDOW_MIN:
                            window //= 2
                        shorts += 1
                        if shorts >= _SHORT_LIMIT:
                            # Classification is not paying off: run a
                            # scalar burst before probing again. Back off
                            # geometrically while probes keep failing.
                            shorts = 0
                            if not productive and burst_len < _DISENGAGE_MAX:
                                burst_len *= 2
                            productive = False
                            scalar_budget = burst_len
                index = seg_end
                total = base + cum[index - 1]
                if total >= next_epoch:
                    system.total_instructions = total
                    core.instructions = total
                    stall = scheme.on_epoch_boundary(core.cycle)
                    system.broadcast_stall(stall)
                    next_epoch += epoch_span
                if crash is not None and total >= crash:
                    system.total_instructions = total
                    core.instructions = total
                    self.crashed = True
                    return
            system.total_instructions = total
            core.instructions = total
        core.finished = True

    def _run_multi_core(self, crash_at_instructions):
        """Interleave cores by always advancing the earliest clock."""
        system = self.system
        hierarchy = self.hierarchy
        scheme = self.scheme
        cores = self.cores
        epoch_span = self.config.epoch_instructions * self.config.n_cores
        next_epoch = epoch_span
        cursors = [_TraceCursor(trace) for trace in self.traces]
        heap = [(0, core_id) for core_id in range(len(cores))]
        heapq.heapify(heap)

        while heap:
            _cycle, core_id = heapq.heappop(heap)
            cursor = cursors[core_id]
            pos = cursor.pos
            if pos >= cursor.n:
                if not cursor.advance():
                    cores[core_id].finished = True
                    continue
                pos = 0
            gap = cursor.gaps[pos]
            addr = cursor.addrs[pos]
            is_write = cursor.writes[pos]
            cursor.pos = pos + 1
            core = cores[core_id]
            core.advance_compute(gap)
            if is_write:
                token = system.new_token()
                wait = hierarchy.access(core_id, addr, True, token, core.cycle)
                system.note_store(addr, token)
            else:
                wait = hierarchy.access(core_id, addr, False, 0, core.cycle)
            core.advance_memory(wait)
            system.total_instructions += gap + 1
            if system.total_instructions >= next_epoch:
                stall = scheme.on_epoch_boundary(core.cycle)
                system.broadcast_stall(stall)
                next_epoch += epoch_span
            if (
                crash_at_instructions is not None
                and system.total_instructions >= crash_at_instructions
            ):
                self.crashed = True
                break
            heapq.heappush(heap, (core.cycle, core_id))

    def _run_multi_core_vector(self, crash_at_instructions):
        """Horizon-batched multi-core interpreter.

        The scalar heap loop above pops the earliest ``(cycle, core_id)``
        key and advances that core by ONE reference. But heap keys are
        written only at push time: while core C runs, every other key is
        frozen (``broadcast_stall`` bumps other cores' clocks, never their
        keys). After C retires a reference it is re-pushed and immediately
        re-popped for as long as ``(C.cycle, C.id)`` sorts below the
        smallest other key ``(ok, oid)``. C therefore runs uninterrupted
        — and unobserved by any other core — for every reference whose
        start clock is ``<= L``, where ``L = ok`` if ``C.id < oid`` else
        ``ok - 1``: the turn's *cycle horizon*. The first reference of a
        turn is unconditional (the pop already happened), and the first
        reference that ends past the horizon still retires before the
        turn ends — exactly the scalar continuation rule.

        Within a turn only C moves, so the single-core machinery applies
        verbatim against C's private L1 tag mirror: classify a lookahead
        window array-at-a-time, bulk-apply all-fast stretches (clamped by
        a binary search over the cumulative metadata so their cycle cost
        provably stays inside the horizon), and replay residuals through
        C's per-core miss-chain engine (budget-bounded) or the verbatim
        scalar body. The three globally-serialized facilities stay exact:

        * **Token order** — ``system.new_token()`` allocation is global,
          but no bulk application or coalescing tail ever crosses a turn
          boundary, so tokens are drawn in exactly the scalar heap order.
        * **Epoch accounting** — each turn re-derives ``tbase`` (the
          system instruction count at its chunk entry position) and
          segments the chunk at the next epoch/crash boundary, so
          ``total_instructions`` crosses boundaries after the same
          reference, with the same stop-the-world stall, as the scalar
          loop; drains get ``tbase``/``ibase`` so a ``CrashSignal``
          escaping mid-drain leaves crash-exact counters.
        * **Shared LLC/NVM coupling** — residuals run the exact access
          chain (snoops, back-invalidations, evictions, channel model),
          and fast references by construction cannot touch shared state.

        Bit-identical to ``_run_multi_core`` — same tokens, cycles,
        counters, recovery images — asserted by
        tests/sim/test_multicore_vectorized.py and the fig10/fig12 CI
        byte-diff gates.
        """
        system = self.system
        scheme = self.scheme
        hierarchy = self.hierarchy
        access = hierarchy.access
        cores = self.cores
        l1_hits = hierarchy._l1_hits
        loads = hierarchy._loads
        stores = hierarchy._stores
        modified = LineState.MODIFIED
        epoch_span = self.config.epoch_instructions * self.config.n_cores
        next_epoch = epoch_span
        # Bumped on every epoch fire; live classified windows carry the
        # serial they were built under and drop themselves on mismatch
        # (ACS syncs and commits can retag/evict resident lines).
        epoch_serial = 0
        track = system.track_reference
        arch_image = system.arch_image
        crash = crash_at_instructions
        bulk_min = _BULK_MIN_MC
        dbg = getattr(self, "_vec_debug", None)
        # Per-core miss-chain engines over the one shared LLC/NVM sink
        # (None when ineligible — every drain site falls back to the
        # scalar body, byte-identically).
        engines = build_miss_engines(self)
        states = [
            _CoreVecState(
                self.traces[cid],
                hierarchy._l1[cid],
                engines[cid] if engines is not None else None,
            )
            for cid in range(len(cores))
        ]

        def scalar_span(st, core, cid, i, stop, budget, tbase, iofs):
            """The verbatim heap-loop body over [i, stop), one reference
            at a time with eager instruction accounting (bulk application
            defers the counters, so they are re-based from ``tbase`` on
            entry); stops after the first reference whose completion
            crosses ``budget``. Returns the new position."""
            gaps = st.gaps
            addrs = st.addrs
            writes = st.writes
            before = st.cum[i - 1] if i else 0
            system.total_instructions = tbase + before
            core.instructions = iofs + before
            while i < stop:
                gap = gaps[i]
                addr = addrs[i]
                core.advance_compute(gap)
                if writes[i]:
                    token = system.new_token()
                    wait = access(cid, addr, True, token, core.cycle)
                    system.note_store(addr, token)
                else:
                    wait = access(cid, addr, False, 0, core.cycle)
                core.advance_memory(wait)
                system.total_instructions += gap + 1
                i += 1
                if budget is not None and core.cycle > budget:
                    break
            return i

        def bulk_limit(st, core, s, r, budget):
            """End of the largest prefix of the fast stretch [s, r) that
            respects the horizon rule: reference t+1 executes only if the
            clock after t (each fast reference costs its gap plus the L1
            hit latency) is still ``<= budget``; the first crossing
            reference is included, and reference s is unconditional."""
            cum = st.cum
            lat1 = st.lat - 1
            prev = cum[s - 1] if s else 0
            # clock after t = cycle + (cum[t] - prev) + lat1 * (t - s + 1)
            target = budget - (core.cycle - prev - lat1 * (s - 1))
            lo = s
            hi = r
            while lo < hi:
                mid = (lo + hi) // 2
                if cum[mid] + lat1 * mid > target:
                    hi = mid
                else:
                    lo = mid + 1
            if lo >= r:
                return r
            return lo + 1

        def bulk_apply(st, core, s, r, nruns):
            """Apply the all-fast stretch [s, r) of st's chunk at once —
            the single-core ``bulk_span`` against this core's private L1
            (see there for the MRU-order and last-token arguments; the
            shared hit/load/store counters are core-agnostic)."""
            addrs = st.addrs
            cum = st.cum
            run_ends = st.run_ends
            wcum = st.wcum
            l1_tags = st.l1_tags
            l1_sets = st.l1_sets
            l1_dirty = st.l1_dirty
            l1_shift = st.shift
            l1_mask = st.mask
            l1_latency = st.lat
            k = r - s
            prev_cum = cum[s - 1] if s else 0
            base_w = wcum[s - 1] if s else 0
            nw = wcum[r - 1] - base_w
            core.cycle += (cum[r - 1] - prev_cum) - k + k * l1_latency
            core.mem_stall_cycles += k * l1_latency
            l1_hits.bump(k)
            loads.bump(k - nw)
            if nruns < _NUMPY_BULK_MIN:
                order = {}
                j = s
                while j < r:
                    addr = addrs[j]
                    if addr in order:
                        del order[addr]
                    order[addr] = None
                    j = run_ends[j]
                for addr in order:
                    line = l1_tags[addr]
                    cache_set = l1_sets[(addr >> l1_shift) & l1_mask]
                    if cache_set[0] is not line:
                        cache_set.remove(line)
                        cache_set.insert(0, line)
                if nw:
                    nt = system._next_token
                    system._next_token = nt + nw
                    last = {}
                    j = s
                    prev_w = base_w
                    while j < r:
                        e = run_ends[j]
                        if e > r:
                            e = r
                        wend = wcum[e - 1]
                        if wend != prev_w:
                            last[addrs[j]] = nt + (wend - base_w) - 1
                            prev_w = wend
                        j = e
                    for addr, tok in last.items():
                        line = l1_tags[addr]
                        line.token = tok
                        if not line._dirty:
                            line._dirty = True
                            l1_dirty[addr] = line
                        line.state = modified
                        if track:
                            arch_image[addr] = tok
                    stores.bump(nw)
                    scheme.on_store_bulk(nw)
                return
            a_seg = st.np_addrs[s:r]
            ru, ridx = np.unique(a_seg[::-1], return_index=True)
            for addr in ru[np.argsort(ridx)[::-1]].tolist():
                line = l1_tags[addr]
                cache_set = l1_sets[(addr >> l1_shift) & l1_mask]
                if cache_set[0] is not line:
                    cache_set.remove(line)
                    cache_set.insert(0, line)
            if nw:
                nt = system._next_token
                system._next_token = nt + nw
                waddr = a_seg[np.flatnonzero(st.np_writes[s:r])]
                wu, widx = np.unique(waddr[::-1], return_index=True)
                last_tok = (nt + (nw - 1) - widx).tolist()
                wu_list = wu.tolist()
                first_idx = np.unique(waddr, return_index=True)[1]
                for j in np.argsort(first_idx).tolist():
                    addr = wu_list[j]
                    tok = last_tok[j]
                    line = l1_tags[addr]
                    line.token = tok
                    if not line._dirty:
                        line._dirty = True
                        l1_dirty[addr] = line
                    line.state = modified
                    if track:
                        arch_image[addr] = tok
                stores.bump(nw)
                scheme.on_store_bulk(nw)

        def run_span(st, core, cid, i, seg_end, budget, tbase, iofs, sfilter):
            """The window walk over [i, seg_end), bounded by the horizon;
            returns the new position (the caller syncs the instruction
            counters from it).

            Same structure as ``_run_single_core_vector``'s segment walk
            with two multi-core twists. First, the budget insertions:
            drains/scalar spans stop at the first horizon-crossing
            reference, bulk stretches are pre-clamped by ``bulk_limit``,
            and the walk returns as soon as the clock passes the horizon.
            Second — the one that makes the fast path pay at all — the
            classified window OUTLIVES the turn. Lockstep phases make
            turns a handful of references long; re-classifying a few
            hundred references per turn would cost more than it saves
            (and did: the tuner then disengages permanently). So the
            classification (bad list, fast positions, dense flag) lives
            in the per-core state and is consumed incrementally across
            turns, invalidated only when it can actually go stale:

            * any global epoch boundary fires (``epoch_serial``), or the
              segment's store filter changes — the EID-conditioned fast
              mask was computed under the old filter;
            * a classified-fast line is evicted — by this core's own
              residual replays or by another core's snoops and LLC
              back-invalidations while this core was off-turn. Every
              eviction path appends to the mirror's eager ``removed``
              log, so the standard stale-positive guard runs at every
              consumption step, now spanning turns.

            New residency and EID retags flip references only toward
            residual-conservative (ACS private-copy syncs retag old
            epochs to old epochs, never onto the live filter value), so
            a surviving classification is never stale-negative-unsafe.
            """
            drain = st.drain
            vec = st.vec
            l1_tags = st.l1_tags
            removed = st.removed
            while i < seg_end:
                if i < st.win_end:
                    ws = st.win_sfilter
                    if st.win_serial != epoch_serial or not (
                        ws is sfilter
                        or (
                            ws is not True
                            and ws is not False
                            and sfilter is not True
                            and sfilter is not False
                            and ws == sfilter
                        )
                    ):
                        st.win_end = 0
                if i >= st.win_end:
                    if st.scalar_budget > 0:
                        if drain is not None:
                            # Persistent burst drain: one generator frame
                            # per burst, resumed each turn with the new
                            # budget — normally via the driver's direct
                            # resume; through here on the first turn of a
                            # burst and after epoch fires or window
                            # interludes. The generator owns its segment
                            # bound (recomputed per resume from the live
                            # instruction totals) and the burst countdown
                            # (it decrements ``scalar_budget`` itself).
                            # ``i + scalar_budget`` is invariant while the
                            # burst drains, so a live generator matches on
                            # (i, stop) exactly; epoch fires and filter
                            # moves invalidate it the same way they
                            # invalidate windows.
                            stop = i + st.scalar_budget
                            g = st.gen
                            if g is not None and not (
                                st.gen_live
                                and st.gen_i == i
                                and st.gen_stop == stop
                                and st.gen_serial == epoch_serial
                                and (
                                    st.gen_sfilter is sfilter
                                    or (
                                        st.gen_sfilter is not True
                                        and st.gen_sfilter is not False
                                        and sfilter is not True
                                        and sfilter is not False
                                        and st.gen_sfilter == sfilter
                                    )
                                )
                            ):
                                g.close()
                                g = None
                                st.gen = None
                            if g is None:
                                g = drain.turn_gen(
                                    i, stop, seg_end, sfilter, budget,
                                    tbase, iofs, cstate=st,
                                    auto_epoch=next_epoch, auto_crash=crash,
                                )
                                st.gen = g
                                st.gen_live = True
                                st.gen_stop = stop
                                st.gen_serial = epoch_serial
                                st.gen_sfilter = sfilter
                                ni = next(g)
                            else:
                                ni = g.send(budget)
                            if not st.gen_live:
                                g.close()
                                st.gen = None
                        else:
                            stop = i + st.scalar_budget
                            if stop > seg_end:
                                stop = seg_end
                            ni = scalar_span(
                                st, core, cid, i, stop, budget, tbase, iofs
                            )
                            st.scalar_budget -= ni - i
                        if dbg is not None:
                            dbg["burst_refs"] += ni - i
                        i = ni
                        if budget is not None and core.cycle > budget:
                            return i
                        continue
                    if st.n - i < bulk_min:
                        # Chunk tail too short to classify: replay it.
                        if drain is not None:
                            i = drain(
                                i, seg_end, seg_end, sfilter, budget,
                                tbase, iofs,
                            )
                        else:
                            i = scalar_span(
                                st, core, cid, i, seg_end, budget, tbase, iofs
                            )
                        if budget is not None and core.cycle > budget:
                            return i
                        continue
                    # -- classify a fresh window against the mirror,
                    #    reconciled here (and only here) with the live tags
                    vec.sync(l1_tags)
                    wb = i
                    we = wb + st.window
                    if we > st.n:
                        we = st.n
                    a_win = st.np_addrs[wb:we]
                    sidx = (a_win >> st.shift) & st.mask
                    eq = st.tags2d[sidx] == a_win[:, None]
                    hit = eq.any(axis=1)
                    if sfilter is True:
                        fast = hit
                    elif sfilter is False:
                        fast = hit & ~st.np_writes[wb:we]
                    else:
                        fast = np.where(
                            st.np_writes[wb:we],
                            (eq & (st.eids2d[sidx] == sfilter)).any(axis=1),
                            hit,
                        )
                    bad = (np.flatnonzero(~fast) + wb).tolist()
                    removed.clear()
                    st.win_wb = wb
                    st.win_end = we
                    st.win_bad = bad
                    st.win_nbad = len(bad)
                    st.win_bptr = 0
                    st.win_bulked = 0
                    st.win_serial = epoch_serial
                    st.win_sfilter = sfilter
                    # Residual-dense windows (≥25%) hand everything to
                    # the drain — exact path, no guard bookkeeping.
                    st.win_dense = (
                        drain is not None and len(bad) * 4 >= we - wb
                    )
                    if not st.win_dense:
                        st.win_fpos = np.flatnonzero(fast) + wb
                        st.win_fast = a_win[fast]
                    if dbg is not None:
                        dbg["windows"] += 1
                        dbg["win_bad"] += len(bad)
                # -- consume the live window up to this turn's bound
                lim = st.win_end
                if lim > seg_end:
                    lim = seg_end
                if st.win_dense:
                    i = drain(i, lim, seg_end, sfilter, budget, tbase, iofs)
                    removed.clear()
                    if i >= st.win_end:
                        win_done(st, i)
                else:
                    i = win_turn(
                        st, core, cid, i, lim, seg_end, budget, sfilter,
                        tbase, iofs,
                    )
                if budget is not None and core.cycle > budget:
                    return i
            return i

        def win_turn(st, core, cid, i, lim, seg_bound, budget, sfilter,
                     tbase, iofs):
            """Walk the live non-dense window from ``i`` up to ``lim``,
            bounded by the horizon; residual-drain tails clamp at
            ``seg_bound``. Shared by run_span (which passes the true
            segment end) and the driver's window hot path (which passes
            ``win_end`` after proving the whole window fits inside the
            segment — a tighter clamp only trades coalescing for
            per-reference replay, which is state-identical)."""
            drain = st.drain
            removed = st.removed
            rcum = st.rcum
            bad = st.win_bad
            n_bad = st.win_nbad
            bptr = st.win_bptr
            fpos = st.win_fpos
            fast_addrs = st.win_fast
            # Cheapest possible cost of bulk_min - 1 fast references
            # (all gaps zero): if even that crosses the horizon, the
            # clamp is guaranteed to cut the stretch below bulk_min,
            # so skip the bulk machinery without binary-searching.
            floor_cost = (bulk_min - 1) * st.lat
            while i < lim:
                if removed:
                    # Stale-positive guard, now cross-turn: demote
                    # classified-fast positions whose line was
                    # evicted — by this core's replays or by other
                    # cores while this core was off-turn.
                    j = int(np.searchsorted(fpos, i))
                    if j < len(fpos):
                        tail = fast_addrs[j:]
                        stale = None
                        for victim in removed:
                            m = tail == victim
                            if m.any():
                                if stale is None:
                                    stale = m
                                else:
                                    stale |= m
                        if stale is not None:
                            extra = fpos[j:][stale].tolist()
                            bad = sorted(bad[bptr:] + extra)
                            n_bad = len(bad)
                            bptr = 0
                    removed.clear()
                while bptr < n_bad and bad[bptr] < i:
                    bptr += 1
                nxt = bad[bptr] if bptr < n_bad else st.win_end
                if nxt > lim:
                    nxt = lim
                if nxt - i >= bulk_min and (
                    budget is None or core.cycle + floor_cost <= budget
                ):
                    nruns = rcum[nxt - 1] - (rcum[i - 1] if i else 0)
                    if nruns >= bulk_min:
                        e = nxt
                        if budget is not None:
                            e = bulk_limit(st, core, i, nxt, budget)
                        if e < nxt and e - i < bulk_min:
                            # Clamped to a stub: the per-reference
                            # replay below stops at the same boundary
                            # (bulk_limit replicates the per-reference
                            # budget rule), so fall through rather
                            # than pay the bulk call overhead — and a
                            # stub must not count as bulked, or the
                            # tuner keeps windows engaged on mixes
                            # whose heap turns chop every stretch.
                            pass
                        elif e < nxt:
                            # Horizon-clamped prefix: apply it and
                            # end the turn.
                            nruns = rcum[e - 1] - (
                                rcum[i - 1] if i else 0
                            )
                            bulk_apply(st, core, i, e, nruns)
                            st.win_bulked += nruns
                            i = e
                            break
                        else:
                            bulk_apply(st, core, i, nxt, nruns)
                            st.win_bulked += nruns
                            i = nxt
                            if i >= lim:
                                break
                            if budget is not None and core.cycle > budget:
                                # Full stretch applied, but its last
                                # reference crossed the horizon.
                                break
                stop = nxt + 1
                if stop > seg_bound:
                    stop = seg_bound
                if drain is not None:
                    i = drain(
                        i, stop, seg_bound, sfilter, budget, tbase, iofs
                    )
                else:
                    i = scalar_span(
                        st, core, cid, i, stop, budget, tbase, iofs
                    )
                if budget is not None and core.cycle > budget:
                    break
            st.win_bptr = bptr
            st.win_bad = bad
            st.win_nbad = n_bad
            if i >= st.win_end:
                win_done(st, i)
            return i

        def win_done(st, i):
            """Window fully consumed: account and self-tune."""
            rcum = st.rcum
            wb = st.win_wb
            creached = rcum[i - 1] - (rcum[wb - 1] if wb else 0)
            if dbg is not None:
                dbg["win_refs"] += i - wb
                dbg["win_runs"] += creached
                dbg["bulked_runs"] += st.win_bulked
            st.win_end = 0
            if st.win_bulked * 2 >= creached:
                st.shorts = 0
                st.productive = True
                st.burst_len = _DISENGAGE_REFS
                if st.win_nbad == 0 and st.window < _WINDOW_MAX:
                    st.window *= 2
            else:
                if st.window > _WINDOW_MIN:
                    st.window //= 2
                st.shorts += 1
                if st.shorts >= _SHORT_LIMIT:
                    st.shorts = 0
                    if (
                        not st.productive
                        and st.burst_len < _DISENGAGE_MAX
                    ):
                        st.burst_len *= 2
                    st.productive = False
                    st.scalar_budget = st.burst_len

        def run_turn(st, core, cid, budget):
            """Advance one core through the current chunk until the
            horizon, or the chunk ends; fires epoch boundaries and crash
            stops exactly as the scalar loop. Returns True on crash."""
            nonlocal next_epoch, epoch_serial
            cum = st.cum
            n = st.n
            while st.pos < n:
                pos = st.pos
                before = cum[pos - 1] if pos else 0
                tbase = system.total_instructions - before
                iofs = core.instructions - before
                limit = next_epoch - tbase
                if crash is not None and crash - tbase < limit:
                    limit = crash - tbase
                seg_end = bisect_left(cum, limit, pos) + 1
                if seg_end > n:
                    seg_end = n
                # Fixed within the segment, like the single-core path:
                # the SystemEID only moves at boundaries, and only this
                # core runs until then.
                sfilter = scheme.vector_store_filter()
                i = run_span(
                    st, core, cid, pos, seg_end, budget, tbase, iofs, sfilter
                )
                st.pos = i
                done = cum[i - 1] if i else 0
                total = tbase + done
                system.total_instructions = total
                core.instructions = iofs + done
                if i >= seg_end:
                    if total >= next_epoch:
                        stall = scheme.on_epoch_boundary(core.cycle)
                        system.broadcast_stall(stall)
                        next_epoch += epoch_span
                        epoch_serial += 1
                    if crash is not None and total >= crash:
                        self.crashed = True
                        return True
                if budget is not None and core.cycle > budget:
                    return False
            return False

        heappush = heapq.heappush
        heappop = heapq.heappop
        heap = [(0, cid) for cid in range(len(cores))]
        heapq.heapify(heap)
        try:
            while heap:
                _key, cid = heappop(heap)
                st = states[cid]
                core = cores[cid]
                if heap:
                    # The horizon: the smallest other key, adjusted for
                    # the heap's core-id tie-break. Frozen for the whole
                    # turn — exactly what the scalar pop compares
                    # against, stale clocks included.
                    ok, oid = heap[0]
                    budget = ok if cid < oid else ok - 1
                else:
                    budget = None
                g = st.gen
                if (
                    g is not None
                    and st.gen_live
                    and st.gen_serial == epoch_serial
                    and st.gen_i == st.pos
                    and dbg is None
                ):
                    # Direct resume of a parked burst generator: it owns
                    # the whole turn protocol (segment bound, counters,
                    # burst countdown), so the per-turn run_turn/run_span
                    # frames and the segment bisect are skipped entirely.
                    # Only the store filter needs revalidating here — an
                    # epoch fire would have bumped the serial.
                    sfilter = scheme.vector_store_filter()
                    gsf = st.gen_sfilter
                    if gsf is sfilter or (
                        gsf is not True
                        and gsf is not False
                        and sfilter is not True
                        and sfilter is not False
                        and gsf == sfilter
                    ):
                        g.send(budget)
                        if st.gen_live:
                            # Parked at the horizon: the turn is over.
                            heappush(heap, (core.cycle, cid))
                            continue
                        # The generator retired its burst, its segment
                        # bound, or the chunk tail: run the boundary
                        # bookkeeping run_turn does after a segment (the
                        # totals can only have crossed if the boundary
                        # reference itself retired), then rejoin the
                        # general loop with whatever budget remains.
                        g.close()
                        st.gen = None
                        total = system.total_instructions
                        if total >= next_epoch:
                            stall = scheme.on_epoch_boundary(core.cycle)
                            system.broadcast_stall(stall)
                            next_epoch += epoch_span
                            epoch_serial += 1
                        if crash is not None and total >= crash:
                            self.crashed = True
                            return
                        if budget is not None and core.cycle > budget:
                            heappush(heap, (core.cycle, cid))
                            continue
                elif (
                    st.pos < st.win_end
                    and not st.win_dense
                    and st.win_serial == epoch_serial
                    and dbg is None
                ):
                    # Window hot path: consume the live classified window
                    # without the run_turn/run_span frames or the segment
                    # bisect. Legal only when the whole window provably
                    # fits inside the segment — no epoch fire or crash
                    # stop can land before win_end — which also makes
                    # win_end a valid residual tail clamp.
                    i = st.pos
                    wcum = st.cum
                    before = wcum[i - 1] if i else 0
                    total = system.total_instructions
                    room = next_epoch - total
                    if crash is not None and crash - total < room:
                        room = crash - total
                    we = st.win_end
                    if wcum[we - 1] - before < room:
                        sfilter = scheme.vector_store_filter()
                        wsf = st.win_sfilter
                        if wsf is sfilter or (
                            wsf is not True
                            and wsf is not False
                            and sfilter is not True
                            and sfilter is not False
                            and wsf == sfilter
                        ):
                            tbase = total - before
                            iofs = core.instructions - before
                            ni = win_turn(
                                st, core, cid, i, we, we, budget,
                                sfilter, tbase, iofs,
                            )
                            st.pos = ni
                            done = wcum[ni - 1] if ni else 0
                            system.total_instructions = tbase + done
                            core.instructions = iofs + done
                            if budget is not None and core.cycle > budget:
                                heappush(heap, (core.cycle, cid))
                                continue
                elif (
                    budget is not None
                    and st.scalar_budget > 0
                    and st.pos >= st.win_end
                    and st.pos < st.n
                    and st.drain is None
                    and dbg is None
                ):
                    # Scalar-burst hot path for engine-declined configs
                    # (banked NVM, multi-channel — no persistent drain
                    # generator exists to park): the verbatim heap-loop
                    # body without the run_turn/run_span frames or the
                    # segment bisect. Legal only when the whole candidate
                    # span provably fits inside the segment; the span is
                    # first capped by the most references the cycle
                    # budget could possibly admit (each costs at least
                    # the L1 hit latency, and the first is
                    # unconditional), which keeps the proof cheap and
                    # usually successful.
                    i = st.pos
                    cum = st.cum
                    before = cum[i - 1] if i else 0
                    total = system.total_instructions
                    room = next_epoch - total
                    if crash is not None and crash - total < room:
                        room = crash - total
                    stop = i + st.scalar_budget
                    maxr = (budget - core.cycle) // st.lat + 2
                    if stop - i > maxr:
                        stop = i + maxr
                    if stop > st.n:
                        stop = st.n
                    if stop > i and cum[stop - 1] - before < room:
                        tbase = total - before
                        iofs = core.instructions - before
                        ni = scalar_span(
                            st, core, cid, i, stop, budget, tbase, iofs
                        )
                        st.scalar_budget -= ni - i
                        st.pos = ni
                        if core.cycle > budget:
                            heappush(heap, (core.cycle, cid))
                            continue
                alive = True
                while True:
                    if st.pos >= st.n and not st.load_chunk():
                        alive = False
                        break
                    if run_turn(st, core, cid, budget):
                        return
                    if budget is not None and core.cycle > budget:
                        break
                if alive:
                    heappush(heap, (core.cycle, cid))
                else:
                    core.finished = True
        finally:
            # Any drain generator still parked at a yield (a crash stop,
            # or a core that finished through the window path mid-burst)
            # holds deferred stat deltas — closing it flushes them.
            for st in states:
                if st.gen is not None:
                    st.gen.close()
                    st.gen = None

    def result(self):
        """Package the current counters into a SimulationResult."""
        return SimulationResult(
            self.scheme_name,
            self.benchmarks,
            self.config,
            cycles=self.system.max_cycle(),
            instructions=self.system.total_instructions,
            stats=self.stats,
            per_core_cycles=[core.cycle for core in self.cores],
        )

    # ------------------------------------------------------------------
    # crash / recovery harness
    # ------------------------------------------------------------------

    def crash_and_recover(self):
        """Power-fail now, recover, and return (image, commit_id, reference).

        ``reference`` is the architectural snapshot the recovered image
        must equal ({} for the initial state; None when the config did not
        enable reference tracking or the snapshot fell out of the window).
        """
        self.system.crash()
        image, commit_id = self.scheme.recover()
        if commit_id is None:
            reference = None
        elif commit_id < 0:
            reference = {}
        else:
            reference = self.system.commit_snapshot(commit_id)
        return image, commit_id, reference
