"""The simulation driver.

Builds a system from a :class:`repro.sim.config.SystemConfig`, attaches a
scheme, and drives one synthetic trace per core through it. Cores are
interleaved by always advancing the one with the earliest clock, so shared
resources (LLC, NVM channels) see a roughly time-ordered request stream.

Epoch boundaries fire when the system-wide instruction count crosses
multiples of ``epoch_instructions * n_cores`` (for a single core this is
exactly the paper's instruction-count epochs); overflow-forced commits
happen inside the schemes' ``on_store`` hooks. Scheduled-commit stalls are
stop-the-world (charged to every core); overflow stalls are charged to the
offending core, with the other cores slowed naturally by NVM backpressure.

Crash injection: pass ``crash_at_instructions`` to stop mid-run, or a
:class:`repro.fault.CrashPlan` as ``crash_plan`` to power-fail at a
*semantic* event (mid-undo-flush, eviction-before-log-write, mid-ACS
scan, …); then call :meth:`Simulation.crash_and_recover` to lose all
volatile state, run the scheme's recovery, and get back the recovered
image together with the reference snapshot it must match.
"""

import heapq
from bisect import bisect_left

import numpy as np

from repro.baselines import Frm, IdealNvm, Journaling, ShadowPaging, ThyNvm
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.line import LineState
from repro.cache.miss_engine import build_engine as build_miss_engine
from repro.common.errors import ConfigurationError
from repro.common.stats import StatCounters
from repro.core.picl import PiclScheme
from repro.cpu.core import CoreState
from repro.fault.plan import CrashSignal
from repro.cpu.system import System
from repro.mem.controller import MemoryController
from repro.sim.results import SimulationResult
from repro.trace.profiles import get_profile
from repro.trace.synthetic import make_trace

#: Address-space stride between cores (programs never share lines).
_CORE_ADDR_STRIDE = 1 << 40

#: Columnar interpreter: shortest all-fast stretch (in references *and* in
#: coalescing groups) worth bulk application; anything shorter replays
#: through the scalar body, whose run-coalescing covers it in O(groups).
_BULK_MIN = 8

#: Bulk stretches spanning at least this many coalescing groups use the
#: numpy reductions in bulk_span; sparser ones use its plain-Python
#: group-at-a-time path (less per-call setup).
_NUMPY_BULK_MIN = 64

#: Classification window bounds: the lookahead doubles from the initial
#: size while windows stay fully fast and productive, and halves when
#: bulk application comes up short.
_WINDOW_INIT = 256
_WINDOW_MIN = 128
_WINDOW_MAX = 4096

#: After this many consecutive unproductive windows the interpreter
#: disengages into a scalar burst before probing again, so miss-heavy
#: phases pay ~zero classification overhead. Bursts start at
#: _DISENGAGE_REFS references and double up to _DISENGAGE_MAX while
#: re-probes keep failing (geometric backoff), so a workload the columnar
#: path never helps converges to pure scalar speed while still noticing a
#: phase change within ~_DISENGAGE_MAX references.
_SHORT_LIMIT = 2
_DISENGAGE_REFS = 4096
_DISENGAGE_MAX = 65536

SCHEME_NAMES = ("ideal", "journaling", "shadow", "frm", "thynvm", "picl")


class _TraceCursor:
    """Positional reader over a trace's chunks.

    Indexes the chunk's parallel gap/addr/write lists directly so the
    interleaved multi-core loop never materializes a per-reference tuple.
    """

    __slots__ = ("_chunks", "gaps", "addrs", "writes", "pos", "n")

    def __init__(self, trace):
        self._chunks = trace.chunks()
        self.gaps = self.addrs = self.writes = ()
        self.pos = 0
        self.n = 0

    def advance(self):
        """Load the next chunk; returns False when the trace is exhausted."""
        chunk = next(self._chunks, None)
        if chunk is None:
            return False
        self.gaps = chunk.gaps
        self.addrs = chunk.addrs
        self.writes = chunk.writes
        self.pos = 0
        self.n = len(chunk.gaps)
        return True


def build_scheme(name, system, config):
    """Instantiate a scheme by name with the config's parameters."""
    if name == "ideal":
        return IdealNvm(system)
    if name == "journaling":
        return Journaling(
            system, config.journal_table_entries, config.table_assoc
        )
    if name == "shadow":
        return ShadowPaging(
            system, config.shadow_table_entries, config.table_assoc
        )
    if name == "frm":
        return Frm(system)
    if name == "thynvm":
        return ThyNvm(
            system,
            config.thynvm_block_entries,
            config.thynvm_page_entries,
            config.table_assoc,
        )
    if name == "picl":
        return PiclScheme(system, config.picl)
    raise ConfigurationError(
        "unknown scheme %r; known: %s" % (name, ", ".join(SCHEME_NAMES))
    )


class Simulation:
    """One system + one scheme + one trace per core.

    ``shared_memory=False`` (the default, the paper's multiprogram rate
    mode) gives every core a disjoint address space; ``True`` makes all
    cores address one shared working set — a multithreaded workload whose
    cross-core stores exercise coherence, undo forwarding, and recovery
    under sharing.
    """

    def __init__(
        self,
        config,
        scheme_name,
        benchmarks,
        n_instructions,
        seed=1234,
        shared_memory=False,
    ):
        if isinstance(benchmarks, str):
            benchmarks = [benchmarks]
        if len(benchmarks) != config.n_cores:
            raise ConfigurationError(
                "%d benchmarks for %d cores" % (len(benchmarks), config.n_cores)
            )
        self.shared_memory = shared_memory
        self.config = config
        self.scheme_name = scheme_name
        self.benchmarks = list(benchmarks)
        self.n_instructions = n_instructions
        self.stats = StatCounters()
        self.controller = MemoryController(config.nvm, self.stats)
        self.hierarchy = CacheHierarchy(
            self.controller,
            n_cores=config.n_cores,
            l1_size=config.l1_size,
            l1_assoc=config.l1_assoc,
            l1_latency=config.l1_latency,
            l2_size=config.l2_size,
            l2_assoc=config.l2_assoc,
            l2_latency=config.l2_latency,
            llc_size_per_core=config.llc_size_per_core,
            llc_assoc=config.llc_assoc,
            llc_latency=config.llc_latency,
            line_size=config.line_size,
            store_miss_factor=config.store_miss_factor,
            stats=self.stats,
        )
        self.cores = [CoreState(i) for i in range(config.n_cores)]
        self.system = System(
            self.controller,
            self.hierarchy,
            self.cores,
            stats=self.stats,
            epoch_handler_cycles=config.epoch_handler_cycles,
            track_reference=config.track_reference,
            reference_depth=config.reference_depth,
        )
        self.scheme = build_scheme(scheme_name, self.system, config)
        self.traces = []
        for core_id, name in enumerate(self.benchmarks):
            profile = config.scale_profile(get_profile(name))
            addr_base = 0 if shared_memory else core_id * _CORE_ADDR_STRIDE
            self.traces.append(
                make_trace(
                    profile,
                    n_instructions,
                    seed=seed + core_id * 101,
                    addr_base=addr_base,
                )
            )
        self.crashed = False
        #: The semantic crash site that fired (None for clean runs and
        #: instruction-count crashes).
        self.crash_site = None
        self._ran = False

    # ------------------------------------------------------------------
    # the main loop
    # ------------------------------------------------------------------

    def run(self, crash_at_instructions=None, crash_plan=None):
        """Drive the traces to completion (or to the crash point).

        ``crash_plan`` injects a semantic-event crash (see
        :mod:`repro.fault.plan`): instruction-count plans fold into
        ``crash_at_instructions``; site plans install hooks on the
        hierarchy/scheme and power-fail by raising ``CrashSignal`` from
        inside the crash window. A plan whose site is never reached lets
        the run complete (check ``crash_plan.fired``).
        """
        if self._ran:
            raise ConfigurationError("a Simulation object runs exactly once")
        self._ran = True
        if crash_plan is not None:
            if crash_plan.at_instructions is not None:
                if crash_at_instructions is None:
                    crash_at_instructions = crash_plan.at_instructions
                else:
                    crash_at_instructions = min(
                        crash_at_instructions, crash_plan.at_instructions
                    )
            else:
                crash_plan.install(self)
        try:
            if len(self.cores) == 1:
                # REPRO_VECTOR (default on) attaches a numpy tag mirror to
                # the single core's L1 at construction; its presence
                # selects the columnar interpreter. REPRO_VECTOR=0 leaves
                # it detached and restores the scalar loop.
                if self.hierarchy._l1[0]._vec is not None:
                    self._run_single_core_vector(crash_at_instructions)
                else:
                    self._run_single_core(crash_at_instructions)
            else:
                self._run_multi_core(crash_at_instructions)
            if not self.crashed:
                stall = self.scheme.finalize(self.system.max_cycle())
                self.system.broadcast_stall(stall)
        except CrashSignal as signal:
            self.crashed = True
            self.crash_site = signal.site
        return self.result()

    def _run_single_core(self, crash_at_instructions):
        """The dominant case: one core, batched over boundary-free segments.

        Each chunk is segmented at the epoch/crash boundaries up front
        (via its cumulative instruction counts, ``bisect`` against the
        next boundary), so the inner loop runs check-free: no per-reference
        epoch or crash comparison. Within a segment, a run of consecutive
        references to one line (``chunk.run_ends``) is dispatched through
        :meth:`repro.cache.hierarchy.CacheHierarchy.access_repeat` — the
        coalescing fast path that charges ``count × hit_latency`` when the
        repeats provably cannot change cache or scheme state, and returns
        None (forcing exact one-by-one replay) when they could. Instruction
        counters are synced at segment boundaries only; nothing observes
        them in between. Results are bit-identical to the per-reference
        loop (asserted by tests/sim/test_batching.py).
        """
        system = self.system
        scheme = self.scheme
        hierarchy = self.hierarchy
        access = hierarchy.access
        access_repeat = hierarchy.access_repeat
        # The L1 read-hit path of ``access`` is inlined below (same shape,
        # same counters) — it is the single most common operation of a run,
        # and the call itself is measurable at this volume.
        l1 = hierarchy._l1[0]
        l1_tags = l1._tags
        l1_sets = l1._sets
        l1_shift = l1._line_shift
        l1_mask = l1._set_mask
        l1_latency = l1.hit_latency
        l1_hits = hierarchy._l1_hits
        loads = hierarchy._loads
        core = self.cores[0]
        epoch_span = self.config.epoch_instructions
        next_epoch = epoch_span
        track = system.track_reference
        arch_image = system.arch_image
        total = system.total_instructions
        crash = crash_at_instructions

        for chunk in self.traces[0].chunks():
            chunk.ensure_metadata()
            gaps = chunk.gaps
            addrs = chunk.addrs
            writes = chunk.writes
            cum = chunk.cum_instructions
            run_ends = chunk.run_ends
            wcum = chunk.write_cum
            n = len(gaps)
            base = total
            index = 0
            while index < n:
                # The segment ends at (and includes) the first reference
                # whose retirement crosses the next epoch or crash point.
                limit = next_epoch - base
                if crash is not None and crash - base < limit:
                    limit = crash - base
                seg_end = bisect_left(cum, limit, index) + 1
                if seg_end > n:
                    seg_end = n
                while index < seg_end:
                    gap = gaps[index]
                    cycle = core.cycle + gap
                    addr = addrs[index]
                    if writes[index]:
                        token = system._next_token
                        system._next_token = token + 1
                        wait = access(0, addr, True, token, cycle)
                        if track:
                            arch_image[addr] = token
                    else:
                        line = l1_tags.get(addr)
                        if line is not None:
                            cache_set = l1_sets[(addr >> l1_shift) & l1_mask]
                            if cache_set[0] is not line:
                                cache_set.remove(line)
                                cache_set.insert(0, line)
                            l1_hits.value += 1
                            loads.value += 1
                            wait = l1_latency
                        else:
                            wait = access(0, addr, False, 0, cycle)
                    core.cycle = cycle + wait
                    core.mem_stall_cycles += wait
                    run_end = run_ends[index]
                    if run_end > seg_end:
                        run_end = seg_end
                    index += 1
                    if run_end > index:
                        # Tail of a same-line run: after the access above
                        # the line is L1-resident at MRU, so the repeats
                        # may coalesce. Tokens are only consumed (and the
                        # reference image only updated) once the fast path
                        # commits to the whole tail.
                        k = run_end - index
                        kw = wcum[run_end - 1] - wcum[index - 1]
                        if kw:
                            last_token = system._next_token + kw - 1
                            wait = access_repeat(
                                0, addr, k - kw, kw, last_token, core.cycle
                            )
                            if wait is None:
                                continue
                            system._next_token += kw
                            if track:
                                arch_image[addr] = last_token
                        else:
                            wait = access_repeat(0, addr, k, 0, 0, core.cycle)
                            if wait is None:
                                continue
                        core.cycle += (cum[run_end - 1] - cum[index - 1]) - k + wait
                        core.mem_stall_cycles += wait
                        index = run_end
                total = base + cum[index - 1]
                if total >= next_epoch:
                    system.total_instructions = total
                    core.instructions = total
                    stall = scheme.on_epoch_boundary(core.cycle)
                    system.broadcast_stall(stall)
                    next_epoch += epoch_span
                if crash is not None and total >= crash:
                    system.total_instructions = total
                    core.instructions = total
                    self.crashed = True
                    return
            system.total_instructions = total
            core.instructions = total
        core.finished = True

    def _run_single_core_vector(self, crash_at_instructions):
        """Columnar interpreter: classify lookahead windows array-at-a-time.

        Builds on the segmented loop above but replaces its per-reference
        walk. Within each boundary-free segment the loop repeatedly:

        1. **Classifies a window.** Set indices and an L1 tag probe for the
           next ``window`` references in numpy against the L1's live tag
           mirror (:class:`repro.cache.vector_mirror.L1TagMirror`). A
           reference is *fast* when it is a classified L1 hit the scheme
           cannot observe: every load hit, plus store hits the scheme's
           ``vector_store_filter`` declares silent (all of them, none, or
           only lines tagged with a given EID — PiCL's same-epoch branch).
           Everything else is *residual*.
        2. **Bulk-applies all-fast stretches.** A stretch of consecutive
           fast references is applied at once: cycle/stall arithmetic from
           the cumulative metadata, bulk counter bumps, MRU reordering in
           last-touch order, last-write tokens per line — exactly the
           state the references would have left one by one. Applying a
           fast stretch cannot change residency or EIDs, so it can never
           invalidate its own classification.
        3. **Replays residuals exactly** through the verbatim scalar body,
           so misses, evictions, undo logging, and crash-plan sites behave
           identically. A residual's evictions CAN invalidate the rest of
           the window (a classified hit whose line just left — the
           stale-positive direction; see vector_mirror's docstring), so the
           mirror logs removals and the loop rescans the remaining window
           for any victim, reclassifying from the current position when one
           appears. Residual side effects can also flip references the
           *other* way (a cross-epoch store retags its line silent); those
           stay residual and replay exactly, which is merely conservative.

        The loop is self-tuning: the window doubles while classification
        keeps paying off (long fast prefixes) and shrinks when prefixes
        come up short; after a few consecutive short prefixes it disengages
        into a pure scalar burst before probing again, so miss-heavy
        workloads pay near-zero classification overhead.

        Bit-identical to the scalar loop — same counters, tokens, cycles,
        recovery images — asserted by tests/sim/test_vectorized.py.
        """
        system = self.system
        scheme = self.scheme
        hierarchy = self.hierarchy
        access = hierarchy.access
        access_repeat = hierarchy.access_repeat
        l1 = hierarchy._l1[0]
        vec = l1._vec
        l1_tags = l1._tags
        l1_sets = l1._sets
        l1_dirty = l1._dirty_lines
        l1_shift = l1._line_shift
        l1_mask = l1._set_mask
        l1_latency = l1.hit_latency
        l1_hits = hierarchy._l1_hits
        loads = hierarchy._loads
        stores = hierarchy._stores
        modified = LineState.MODIFIED
        tags2d = vec.tags2d
        eids2d = vec.eids2d
        removed = vec.removed
        core = self.cores[0]
        epoch_span = self.config.epoch_instructions
        next_epoch = epoch_span
        track = system.track_reference
        arch_image = system.arch_image
        total = system.total_instructions
        crash = crash_at_instructions
        bulk_min = _BULK_MIN
        window = _WINDOW_INIT
        shorts = 0
        scalar_budget = 0
        burst_len = _DISENGAGE_REFS
        productive = False
        dbg = getattr(self, "_vec_debug", None)
        # Batched miss-chain engine (repro.cache.miss_engine): residual
        # spans drain through one fused loop instead of the per-miss call
        # chain. None when ineligible (REPRO_BATCH_MISS=0, multi-channel
        # NVM, DRAM cache, foreign sink) — every call site below then
        # falls back to scalar_span, byte-identically.
        engine = build_miss_engine(self)

        for chunk in self.traces[0].chunks():
            chunk.ensure_metadata()
            chunk.ensure_arrays()
            gaps = chunk.gaps
            addrs = chunk.addrs
            writes = chunk.writes
            cum = chunk.cum_instructions
            run_ends = chunk.run_ends
            rcum = chunk.run_cum
            wcum = chunk.write_cum
            np_addrs = chunk.np_addrs
            np_writes = chunk.np_writes
            n = len(gaps)
            base = total

            def scalar_span(
                i,
                stop,
                seg_end,
                # Default-arg binding: the body runs per reference, and
                # locals are materially faster than closure derefs there.
                gaps=gaps,
                addrs=addrs,
                writes=writes,
                cum=cum,
                run_ends=run_ends,
                wcum=wcum,
                core=core,
                system=system,
                access=access,
                access_repeat=access_repeat,
                track=track,
                arch_image=arch_image,
                l1_tags=l1_tags,
                l1_sets=l1_sets,
                l1_shift=l1_shift,
                l1_mask=l1_mask,
                l1_latency=l1_latency,
                l1_hits=l1_hits,
                loads=loads,
            ):
                """The verbatim scalar body over [i, stop); returns new i.

                Run-coalescing tails may legitimately advance past ``stop``
                (never past ``seg_end``) — the caller's window bookkeeping
                skips anything already consumed.
                """
                while i < stop:
                    gap = gaps[i]
                    cycle = core.cycle + gap
                    addr = addrs[i]
                    if writes[i]:
                        token = system._next_token
                        system._next_token = token + 1
                        wait = access(0, addr, True, token, cycle)
                        if track:
                            arch_image[addr] = token
                    else:
                        line = l1_tags.get(addr)
                        if line is not None:
                            cache_set = l1_sets[(addr >> l1_shift) & l1_mask]
                            if cache_set[0] is not line:
                                cache_set.remove(line)
                                cache_set.insert(0, line)
                            l1_hits.value += 1
                            loads.value += 1
                            wait = l1_latency
                        else:
                            wait = access(0, addr, False, 0, cycle)
                    core.cycle = cycle + wait
                    core.mem_stall_cycles += wait
                    run_end = run_ends[i]
                    if run_end > seg_end:
                        run_end = seg_end
                    i += 1
                    if run_end > i:
                        k = run_end - i
                        kw = wcum[run_end - 1] - wcum[i - 1]
                        if kw:
                            last_token = system._next_token + kw - 1
                            wait = access_repeat(
                                0, addr, k - kw, kw, last_token, core.cycle
                            )
                            if wait is None:
                                continue
                            system._next_token += kw
                            if track:
                                arch_image[addr] = last_token
                        else:
                            wait = access_repeat(0, addr, k, 0, 0, core.cycle)
                            if wait is None:
                                continue
                        core.cycle += (
                            cum[run_end - 1] - cum[i - 1]
                        ) - k + wait
                        core.mem_stall_cycles += wait
                        i = run_end
                return i

            def bulk_span(
                s,
                r,
                nruns,
                # Same default-arg binding as scalar_span: the group loops
                # below run once per coalescing group.
                addrs=addrs,
                cum=cum,
                run_ends=run_ends,
                wcum=wcum,
                core=core,
                system=system,
                scheme=scheme,
                track=track,
                arch_image=arch_image,
                l1_tags=l1_tags,
                l1_sets=l1_sets,
                l1_dirty=l1_dirty,
                l1_shift=l1_shift,
                l1_mask=l1_mask,
                l1_latency=l1_latency,
                l1_hits=l1_hits,
                loads=loads,
                stores=stores,
                modified=modified,
            ):
                """Apply the all-fast stretch [s, r) at once.

                The aggregate arithmetic (cycles, stalls, counters, token
                range) is O(1) off the cumulative metadata; per-line state
                (MRU order, last-write token, dirty bit) is applied once
                per *distinct* line. The Python path iterates coalescing
                groups (``run_ends`` jumps), never references, so its cost
                matches the scalar loop's O(runs) — the numpy reductions
                take over above a run-count crossover.
                """
                k = r - s
                prev_cum = cum[s - 1] if s else 0
                base_w = wcum[s - 1] if s else 0
                nw = wcum[r - 1] - base_w
                core.cycle += (cum[r - 1] - prev_cum) - k + k * l1_latency
                core.mem_stall_cycles += k * l1_latency
                l1_hits.bump(k)
                loads.bump(k - nw)
                if nruns < _NUMPY_BULK_MIN:
                    # MRU: one move-to-front per distinct line, ascending
                    # last-touch, so the final order matches k individual
                    # touches (re-inserting moves a key to the end).
                    order = {}
                    j = s
                    while j < r:
                        addr = addrs[j]
                        if addr in order:
                            del order[addr]
                        order[addr] = None
                        j = run_ends[j]
                    for addr in order:
                        line = l1_tags[addr]
                        cache_set = l1_sets[(addr >> l1_shift) & l1_mask]
                        if cache_set[0] is not line:
                            cache_set.remove(line)
                            cache_set.insert(0, line)
                    if nw:
                        nt = system._next_token
                        system._next_token = nt + nw
                        # A line's surviving token is its last store in the
                        # stretch: the last write of the last run that
                        # stores to it, whose ordinal is the cumulative
                        # write count at that run's end (intermediates are
                        # unobservable — same argument as access_repeat's
                        # last_token). Dict insertion order = first-store
                        # order, matching the dirty dict's scalar order.
                        last = {}
                        j = s
                        prev_w = base_w
                        while j < r:
                            e = run_ends[j]
                            if e > r:
                                e = r
                            wend = wcum[e - 1]
                            if wend != prev_w:
                                last[addrs[j]] = nt + (wend - base_w) - 1
                                prev_w = wend
                            j = e
                        for addr, tok in last.items():
                            line = l1_tags[addr]
                            line.token = tok
                            if not line._dirty:
                                line._dirty = True
                                l1_dirty[addr] = line
                            line.state = modified
                            if track:
                                arch_image[addr] = tok
                        stores.bump(nw)
                        scheme.on_store_bulk(nw)
                    return
                a_seg = np_addrs[s:r]
                ru, ridx = np.unique(a_seg[::-1], return_index=True)
                for addr in ru[np.argsort(ridx)[::-1]].tolist():
                    line = l1_tags[addr]
                    cache_set = l1_sets[(addr >> l1_shift) & l1_mask]
                    if cache_set[0] is not line:
                        cache_set.remove(line)
                        cache_set.insert(0, line)
                if nw:
                    nt = system._next_token
                    system._next_token = nt + nw
                    waddr = a_seg[np.flatnonzero(np_writes[s:r])]
                    wu, widx = np.unique(waddr[::-1], return_index=True)
                    last_tok = (nt + (nw - 1) - widx).tolist()
                    wu_list = wu.tolist()
                    first_idx = np.unique(waddr, return_index=True)[1]
                    for j in np.argsort(first_idx).tolist():
                        addr = wu_list[j]
                        tok = last_tok[j]
                        line = l1_tags[addr]
                        line.token = tok
                        if not line._dirty:
                            line._dirty = True
                            l1_dirty[addr] = line
                        line.state = modified
                        if track:
                            arch_image[addr] = tok
                    stores.bump(nw)
                    scheme.on_store_bulk(nw)

            if engine is not None:
                drain = engine.make_drain(gaps, addrs, writes, cum, run_ends, wcum)

            index = 0
            while index < n:
                limit = next_epoch - base
                if crash is not None and crash - base < limit:
                    limit = crash - base
                seg_end = bisect_left(cum, limit, index) + 1
                if seg_end > n:
                    seg_end = n
                # ``is True``/``is False`` below: an EID filter value of 0
                # or 1 must not be mistaken for the booleans. The filter is
                # fixed within a segment (the SystemEID only moves at
                # boundaries, which are segment ends by construction).
                sfilter = scheme.vector_store_filter()
                i = index
                while i < seg_end:
                    if scalar_budget > 0:
                        stop = i + scalar_budget
                        if stop > seg_end:
                            stop = seg_end
                        if engine is not None:
                            # The drain maintains the mirror queues at its
                            # inlined fill/evict sites for free, so bursts
                            # keep the mirror attached — no stale rebuild
                            # at the next sync.
                            ni = drain(i, stop, seg_end, sfilter)
                        else:
                            # Detach the mirror for the burst: the hot
                            # cache paths then pay zero queue-append tax
                            # (byte-identical to REPRO_VECTOR=0), and the
                            # next sync rebuilds from the live tags
                            # instead of replaying what the burst changed.
                            l1._vec = None
                            try:
                                ni = scalar_span(i, stop, seg_end)
                            finally:
                                l1._vec = vec
                                vec.stale = True
                        scalar_budget -= ni - i
                        if dbg is not None:
                            dbg["burst_refs"] += ni - i
                        i = ni
                        continue
                    if seg_end - i < bulk_min:
                        if engine is not None:
                            i = drain(i, seg_end, seg_end, sfilter)
                        else:
                            i = scalar_span(i, seg_end, seg_end)
                        break
                    # -- classify the next window against the mirror,
                    #    reconciled here (and only here) with the live tags
                    vec.sync(l1_tags)
                    wb = i
                    we = wb + window
                    if we > seg_end:
                        we = seg_end
                    a_win = np_addrs[wb:we]
                    sidx = (a_win >> l1_shift) & l1_mask
                    eq = tags2d[sidx] == a_win[:, None]
                    hit = eq.any(axis=1)
                    if sfilter is True:
                        fast = hit
                    elif sfilter is False:
                        fast = hit & ~np_writes[wb:we]
                    else:
                        fast = np.where(
                            np_writes[wb:we],
                            (eq & (eids2d[sidx] == sfilter)).any(axis=1),
                            hit,
                        )
                    bad = (np.flatnonzero(~fast) + wb).tolist()
                    n_bad = len(bad)
                    if engine is not None and n_bad * 4 >= we - wb:
                        # Residual-dense window (≥25%): the walk's bulk
                        # stretches cannot pay for themselves between
                        # misses, so hand the whole window to the drain
                        # (exact path, no stale-positive bookkeeping
                        # needed). Counted as unproductive below, which
                        # steers persistently miss-heavy phases into
                        # drain bursts with zero classification cost.
                        i = drain(wb, we, seg_end, sfilter)
                        removed.clear()
                        bulked_runs = 0
                    else:
                        # Fast positions (absolute) and their addresses,
                        # for the stale-positive guard below: only a
                        # victim that the *remaining fast* part of the
                        # window references can invalidate the
                        # classification — residual positions replay
                        # exactly regardless.
                        fpos = np.flatnonzero(fast) + wb
                        fast_addrs = a_win[fast]
                        removed.clear()
                        # -- walk the window: bulk fast stretches, replay
                        #    residuals, revalidate after each residual
                        bptr = 0
                        bulked_runs = 0
                        while i < we:
                            while bptr < n_bad and bad[bptr] < i:
                                bptr += 1
                            nxt = bad[bptr] if bptr < n_bad else we
                            if nxt - i >= bulk_min:
                                # Size the stretch in coalescing groups,
                                # not references: the scalar loop replays
                                # a same-line run in O(1), so a long but
                                # run-sparse stretch is cheaper replayed.
                                nruns = rcum[nxt - 1] - (rcum[i - 1] if i else 0)
                                if nruns >= bulk_min:
                                    bulk_span(i, nxt, nruns)
                                    bulked_runs += nruns
                                    i = nxt
                                    if i >= we:
                                        break
                            stop = nxt + 1
                            if stop > seg_end:
                                stop = seg_end
                            if engine is not None:
                                i = drain(i, stop, seg_end, sfilter)
                            else:
                                i = scalar_span(i, stop, seg_end)
                            if removed:
                                # Stale-positive guard: a classified-fast
                                # position whose line was just evicted is
                                # no longer safe to bulk — demote it to
                                # residual by splicing it into the bad
                                # list (demotion is always safe:
                                # residuals replay exactly). Re-adds need
                                # no check — a classified miss replays
                                # exactly anyway.
                                if i < we:
                                    j = int(np.searchsorted(fpos, i))
                                    if j < len(fpos):
                                        tail = fast_addrs[j:]
                                        stale = None
                                        for victim in removed:
                                            m = tail == victim
                                            if m.any():
                                                if stale is None:
                                                    stale = m
                                                else:
                                                    stale |= m
                                        if stale is not None:
                                            extra = fpos[j:][stale].tolist()
                                            bad = sorted(bad[bptr:] + extra)
                                            n_bad = len(bad)
                                            bptr = 0
                                removed.clear()
                    # -- self-tuning: how much of the window's coalescing
                    #    work was actually bulk-applied?
                    creached = rcum[i - 1] - (rcum[wb - 1] if wb else 0)
                    if dbg is not None:
                        dbg["windows"] += 1
                        dbg["win_refs"] += i - wb
                        dbg["win_runs"] += creached
                        dbg["bulked_runs"] += bulked_runs
                        dbg["win_bad"] += n_bad
                    if bulked_runs * 2 >= creached:
                        shorts = 0
                        productive = True
                        burst_len = _DISENGAGE_REFS
                        if n_bad == 0 and window < _WINDOW_MAX:
                            window *= 2
                    else:
                        if window > _WINDOW_MIN:
                            window //= 2
                        shorts += 1
                        if shorts >= _SHORT_LIMIT:
                            # Classification is not paying off: run a
                            # scalar burst before probing again. Back off
                            # geometrically while probes keep failing.
                            shorts = 0
                            if not productive and burst_len < _DISENGAGE_MAX:
                                burst_len *= 2
                            productive = False
                            scalar_budget = burst_len
                index = seg_end
                total = base + cum[index - 1]
                if total >= next_epoch:
                    system.total_instructions = total
                    core.instructions = total
                    stall = scheme.on_epoch_boundary(core.cycle)
                    system.broadcast_stall(stall)
                    next_epoch += epoch_span
                if crash is not None and total >= crash:
                    system.total_instructions = total
                    core.instructions = total
                    self.crashed = True
                    return
            system.total_instructions = total
            core.instructions = total
        core.finished = True

    def _run_multi_core(self, crash_at_instructions):
        """Interleave cores by always advancing the earliest clock."""
        system = self.system
        hierarchy = self.hierarchy
        scheme = self.scheme
        cores = self.cores
        epoch_span = self.config.epoch_instructions * self.config.n_cores
        next_epoch = epoch_span
        cursors = [_TraceCursor(trace) for trace in self.traces]
        heap = [(0, core_id) for core_id in range(len(cores))]
        heapq.heapify(heap)

        while heap:
            _cycle, core_id = heapq.heappop(heap)
            cursor = cursors[core_id]
            pos = cursor.pos
            if pos >= cursor.n:
                if not cursor.advance():
                    cores[core_id].finished = True
                    continue
                pos = 0
            gap = cursor.gaps[pos]
            addr = cursor.addrs[pos]
            is_write = cursor.writes[pos]
            cursor.pos = pos + 1
            core = cores[core_id]
            core.advance_compute(gap)
            if is_write:
                token = system.new_token()
                wait = hierarchy.access(core_id, addr, True, token, core.cycle)
                system.note_store(addr, token)
            else:
                wait = hierarchy.access(core_id, addr, False, 0, core.cycle)
            core.advance_memory(wait)
            system.total_instructions += gap + 1
            if system.total_instructions >= next_epoch:
                stall = scheme.on_epoch_boundary(core.cycle)
                system.broadcast_stall(stall)
                next_epoch += epoch_span
            if (
                crash_at_instructions is not None
                and system.total_instructions >= crash_at_instructions
            ):
                self.crashed = True
                break
            heapq.heappush(heap, (core.cycle, core_id))

    def result(self):
        """Package the current counters into a SimulationResult."""
        return SimulationResult(
            self.scheme_name,
            self.benchmarks,
            self.config,
            cycles=self.system.max_cycle(),
            instructions=self.system.total_instructions,
            stats=self.stats,
            per_core_cycles=[core.cycle for core in self.cores],
        )

    # ------------------------------------------------------------------
    # crash / recovery harness
    # ------------------------------------------------------------------

    def crash_and_recover(self):
        """Power-fail now, recover, and return (image, commit_id, reference).

        ``reference`` is the architectural snapshot the recovered image
        must equal ({} for the initial state; None when the config did not
        enable reference tracking or the snapshot fell out of the window).
        """
        self.system.crash()
        image, commit_id = self.scheme.recover()
        if commit_id is None:
            reference = None
        elif commit_id < 0:
            reference = {}
        else:
            reference = self.system.commit_snapshot(commit_id)
        return image, commit_id, reference
