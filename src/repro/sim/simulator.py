"""The simulation driver.

Builds a system from a :class:`repro.sim.config.SystemConfig`, attaches a
scheme, and drives one synthetic trace per core through it. Cores are
interleaved by always advancing the one with the earliest clock, so shared
resources (LLC, NVM channels) see a roughly time-ordered request stream.

Epoch boundaries fire when the system-wide instruction count crosses
multiples of ``epoch_instructions * n_cores`` (for a single core this is
exactly the paper's instruction-count epochs); overflow-forced commits
happen inside the schemes' ``on_store`` hooks. Scheduled-commit stalls are
stop-the-world (charged to every core); overflow stalls are charged to the
offending core, with the other cores slowed naturally by NVM backpressure.

Crash injection: pass ``crash_at_instructions`` to stop mid-run, or a
:class:`repro.fault.CrashPlan` as ``crash_plan`` to power-fail at a
*semantic* event (mid-undo-flush, eviction-before-log-write, mid-ACS
scan, …); then call :meth:`Simulation.crash_and_recover` to lose all
volatile state, run the scheme's recovery, and get back the recovered
image together with the reference snapshot it must match.
"""

import heapq
from bisect import bisect_left

from repro.baselines import Frm, IdealNvm, Journaling, ShadowPaging, ThyNvm
from repro.cache.hierarchy import CacheHierarchy
from repro.common.errors import ConfigurationError
from repro.common.stats import StatCounters
from repro.core.picl import PiclScheme
from repro.cpu.core import CoreState
from repro.fault.plan import CrashSignal
from repro.cpu.system import System
from repro.mem.controller import MemoryController
from repro.sim.results import SimulationResult
from repro.trace.profiles import get_profile
from repro.trace.synthetic import make_trace

#: Address-space stride between cores (programs never share lines).
_CORE_ADDR_STRIDE = 1 << 40

SCHEME_NAMES = ("ideal", "journaling", "shadow", "frm", "thynvm", "picl")


class _TraceCursor:
    """Positional reader over a trace's chunks.

    Indexes the chunk's parallel gap/addr/write lists directly so the
    interleaved multi-core loop never materializes a per-reference tuple.
    """

    __slots__ = ("_chunks", "gaps", "addrs", "writes", "pos", "n")

    def __init__(self, trace):
        self._chunks = trace.chunks()
        self.gaps = self.addrs = self.writes = ()
        self.pos = 0
        self.n = 0

    def advance(self):
        """Load the next chunk; returns False when the trace is exhausted."""
        chunk = next(self._chunks, None)
        if chunk is None:
            return False
        self.gaps = chunk.gaps
        self.addrs = chunk.addrs
        self.writes = chunk.writes
        self.pos = 0
        self.n = len(chunk.gaps)
        return True


def build_scheme(name, system, config):
    """Instantiate a scheme by name with the config's parameters."""
    if name == "ideal":
        return IdealNvm(system)
    if name == "journaling":
        return Journaling(
            system, config.journal_table_entries, config.table_assoc
        )
    if name == "shadow":
        return ShadowPaging(
            system, config.shadow_table_entries, config.table_assoc
        )
    if name == "frm":
        return Frm(system)
    if name == "thynvm":
        return ThyNvm(
            system,
            config.thynvm_block_entries,
            config.thynvm_page_entries,
            config.table_assoc,
        )
    if name == "picl":
        return PiclScheme(system, config.picl)
    raise ConfigurationError(
        "unknown scheme %r; known: %s" % (name, ", ".join(SCHEME_NAMES))
    )


class Simulation:
    """One system + one scheme + one trace per core.

    ``shared_memory=False`` (the default, the paper's multiprogram rate
    mode) gives every core a disjoint address space; ``True`` makes all
    cores address one shared working set — a multithreaded workload whose
    cross-core stores exercise coherence, undo forwarding, and recovery
    under sharing.
    """

    def __init__(
        self,
        config,
        scheme_name,
        benchmarks,
        n_instructions,
        seed=1234,
        shared_memory=False,
    ):
        if isinstance(benchmarks, str):
            benchmarks = [benchmarks]
        if len(benchmarks) != config.n_cores:
            raise ConfigurationError(
                "%d benchmarks for %d cores" % (len(benchmarks), config.n_cores)
            )
        self.shared_memory = shared_memory
        self.config = config
        self.scheme_name = scheme_name
        self.benchmarks = list(benchmarks)
        self.n_instructions = n_instructions
        self.stats = StatCounters()
        self.controller = MemoryController(config.nvm, self.stats)
        self.hierarchy = CacheHierarchy(
            self.controller,
            n_cores=config.n_cores,
            l1_size=config.l1_size,
            l1_assoc=config.l1_assoc,
            l1_latency=config.l1_latency,
            l2_size=config.l2_size,
            l2_assoc=config.l2_assoc,
            l2_latency=config.l2_latency,
            llc_size_per_core=config.llc_size_per_core,
            llc_assoc=config.llc_assoc,
            llc_latency=config.llc_latency,
            line_size=config.line_size,
            store_miss_factor=config.store_miss_factor,
            stats=self.stats,
        )
        self.cores = [CoreState(i) for i in range(config.n_cores)]
        self.system = System(
            self.controller,
            self.hierarchy,
            self.cores,
            stats=self.stats,
            epoch_handler_cycles=config.epoch_handler_cycles,
            track_reference=config.track_reference,
            reference_depth=config.reference_depth,
        )
        self.scheme = build_scheme(scheme_name, self.system, config)
        self.traces = []
        for core_id, name in enumerate(self.benchmarks):
            profile = config.scale_profile(get_profile(name))
            addr_base = 0 if shared_memory else core_id * _CORE_ADDR_STRIDE
            self.traces.append(
                make_trace(
                    profile,
                    n_instructions,
                    seed=seed + core_id * 101,
                    addr_base=addr_base,
                )
            )
        self.crashed = False
        #: The semantic crash site that fired (None for clean runs and
        #: instruction-count crashes).
        self.crash_site = None
        self._ran = False

    # ------------------------------------------------------------------
    # the main loop
    # ------------------------------------------------------------------

    def run(self, crash_at_instructions=None, crash_plan=None):
        """Drive the traces to completion (or to the crash point).

        ``crash_plan`` injects a semantic-event crash (see
        :mod:`repro.fault.plan`): instruction-count plans fold into
        ``crash_at_instructions``; site plans install hooks on the
        hierarchy/scheme and power-fail by raising ``CrashSignal`` from
        inside the crash window. A plan whose site is never reached lets
        the run complete (check ``crash_plan.fired``).
        """
        if self._ran:
            raise ConfigurationError("a Simulation object runs exactly once")
        self._ran = True
        if crash_plan is not None:
            if crash_plan.at_instructions is not None:
                if crash_at_instructions is None:
                    crash_at_instructions = crash_plan.at_instructions
                else:
                    crash_at_instructions = min(
                        crash_at_instructions, crash_plan.at_instructions
                    )
            else:
                crash_plan.install(self)
        try:
            if len(self.cores) == 1:
                self._run_single_core(crash_at_instructions)
            else:
                self._run_multi_core(crash_at_instructions)
            if not self.crashed:
                stall = self.scheme.finalize(self.system.max_cycle())
                self.system.broadcast_stall(stall)
        except CrashSignal as signal:
            self.crashed = True
            self.crash_site = signal.site
        return self.result()

    def _run_single_core(self, crash_at_instructions):
        """The dominant case: one core, batched over boundary-free segments.

        Each chunk is segmented at the epoch/crash boundaries up front
        (via its cumulative instruction counts, ``bisect`` against the
        next boundary), so the inner loop runs check-free: no per-reference
        epoch or crash comparison. Within a segment, a run of consecutive
        references to one line (``chunk.run_ends``) is dispatched through
        :meth:`repro.cache.hierarchy.CacheHierarchy.access_repeat` — the
        coalescing fast path that charges ``count × hit_latency`` when the
        repeats provably cannot change cache or scheme state, and returns
        None (forcing exact one-by-one replay) when they could. Instruction
        counters are synced at segment boundaries only; nothing observes
        them in between. Results are bit-identical to the per-reference
        loop (asserted by tests/sim/test_batching.py).
        """
        system = self.system
        scheme = self.scheme
        hierarchy = self.hierarchy
        access = hierarchy.access
        access_repeat = hierarchy.access_repeat
        # The L1 read-hit path of ``access`` is inlined below (same shape,
        # same counters) — it is the single most common operation of a run,
        # and the call itself is measurable at this volume.
        l1 = hierarchy._l1[0]
        l1_tags = l1._tags
        l1_sets = l1._sets
        l1_shift = l1._line_shift
        l1_mask = l1._set_mask
        l1_latency = l1.hit_latency
        l1_hits = hierarchy._l1_hits
        loads = hierarchy._loads
        core = self.cores[0]
        epoch_span = self.config.epoch_instructions
        next_epoch = epoch_span
        track = system.track_reference
        arch_image = system.arch_image
        total = system.total_instructions
        crash = crash_at_instructions

        for chunk in self.traces[0].chunks():
            chunk.ensure_metadata()
            gaps = chunk.gaps
            addrs = chunk.addrs
            writes = chunk.writes
            cum = chunk.cum_instructions
            run_ends = chunk.run_ends
            wcum = chunk.write_cum
            n = len(gaps)
            base = total
            index = 0
            while index < n:
                # The segment ends at (and includes) the first reference
                # whose retirement crosses the next epoch or crash point.
                limit = next_epoch - base
                if crash is not None and crash - base < limit:
                    limit = crash - base
                seg_end = bisect_left(cum, limit, index) + 1
                if seg_end > n:
                    seg_end = n
                while index < seg_end:
                    gap = gaps[index]
                    cycle = core.cycle + gap
                    addr = addrs[index]
                    if writes[index]:
                        token = system._next_token
                        system._next_token = token + 1
                        wait = access(0, addr, True, token, cycle)
                        if track:
                            arch_image[addr] = token
                    else:
                        line = l1_tags.get(addr)
                        if line is not None:
                            cache_set = l1_sets[(addr >> l1_shift) & l1_mask]
                            if cache_set[0] is not line:
                                cache_set.remove(line)
                                cache_set.insert(0, line)
                            l1_hits.value += 1
                            loads.value += 1
                            wait = l1_latency
                        else:
                            wait = access(0, addr, False, 0, cycle)
                    core.cycle = cycle + wait
                    core.mem_stall_cycles += wait
                    run_end = run_ends[index]
                    if run_end > seg_end:
                        run_end = seg_end
                    index += 1
                    if run_end > index:
                        # Tail of a same-line run: after the access above
                        # the line is L1-resident at MRU, so the repeats
                        # may coalesce. Tokens are only consumed (and the
                        # reference image only updated) once the fast path
                        # commits to the whole tail.
                        k = run_end - index
                        kw = wcum[run_end - 1] - wcum[index - 1]
                        if kw:
                            last_token = system._next_token + kw - 1
                            wait = access_repeat(
                                0, addr, k - kw, kw, last_token, core.cycle
                            )
                            if wait is None:
                                continue
                            system._next_token += kw
                            if track:
                                arch_image[addr] = last_token
                        else:
                            wait = access_repeat(0, addr, k, 0, 0, core.cycle)
                            if wait is None:
                                continue
                        core.cycle += (cum[run_end - 1] - cum[index - 1]) - k + wait
                        core.mem_stall_cycles += wait
                        index = run_end
                total = base + cum[index - 1]
                if total >= next_epoch:
                    system.total_instructions = total
                    core.instructions = total
                    stall = scheme.on_epoch_boundary(core.cycle)
                    system.broadcast_stall(stall)
                    next_epoch += epoch_span
                if crash is not None and total >= crash:
                    system.total_instructions = total
                    core.instructions = total
                    self.crashed = True
                    return
            system.total_instructions = total
            core.instructions = total
        core.finished = True

    def _run_multi_core(self, crash_at_instructions):
        """Interleave cores by always advancing the earliest clock."""
        system = self.system
        hierarchy = self.hierarchy
        scheme = self.scheme
        cores = self.cores
        epoch_span = self.config.epoch_instructions * self.config.n_cores
        next_epoch = epoch_span
        cursors = [_TraceCursor(trace) for trace in self.traces]
        heap = [(0, core_id) for core_id in range(len(cores))]
        heapq.heapify(heap)

        while heap:
            _cycle, core_id = heapq.heappop(heap)
            cursor = cursors[core_id]
            pos = cursor.pos
            if pos >= cursor.n:
                if not cursor.advance():
                    cores[core_id].finished = True
                    continue
                pos = 0
            gap = cursor.gaps[pos]
            addr = cursor.addrs[pos]
            is_write = cursor.writes[pos]
            cursor.pos = pos + 1
            core = cores[core_id]
            core.advance_compute(gap)
            if is_write:
                token = system.new_token()
                wait = hierarchy.access(core_id, addr, True, token, core.cycle)
                system.note_store(addr, token)
            else:
                wait = hierarchy.access(core_id, addr, False, 0, core.cycle)
            core.advance_memory(wait)
            system.total_instructions += gap + 1
            if system.total_instructions >= next_epoch:
                stall = scheme.on_epoch_boundary(core.cycle)
                system.broadcast_stall(stall)
                next_epoch += epoch_span
            if (
                crash_at_instructions is not None
                and system.total_instructions >= crash_at_instructions
            ):
                self.crashed = True
                break
            heapq.heappush(heap, (core.cycle, core_id))

    def result(self):
        """Package the current counters into a SimulationResult."""
        return SimulationResult(
            self.scheme_name,
            self.benchmarks,
            self.config,
            cycles=self.system.max_cycle(),
            instructions=self.system.total_instructions,
            stats=self.stats,
            per_core_cycles=[core.cycle for core in self.cores],
        )

    # ------------------------------------------------------------------
    # crash / recovery harness
    # ------------------------------------------------------------------

    def crash_and_recover(self):
        """Power-fail now, recover, and return (image, commit_id, reference).

        ``reference`` is the architectural snapshot the recovered image
        must equal ({} for the initial state; None when the config did not
        enable reference tracking or the snapshot fell out of the window).
        """
        self.system.crash()
        image, commit_id = self.scheme.recover()
        if commit_id is None:
            reference = None
        elif commit_id < 0:
            reference = {}
        else:
            reference = self.system.commit_snapshot(commit_id)
        return image, commit_id, reference
