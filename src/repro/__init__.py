"""PiCL reproduction: a software-transparent, persistent cache log for NVMM.

A full Python reproduction of *PiCL* (Nguyen & Wentzlaff, MICRO 2018):
the PiCL mechanism itself (multi-undo logging, cache-driven logging,
asynchronous cache scan), the four prior-work baselines it is compared
against, and the trace-driven cache/NVM simulation substrate the
evaluation runs on.

Quickstart::

    from repro import Simulation, SystemConfig

    config = SystemConfig().scaled(64)   # the paper's system, laptop-sized
    ideal = Simulation(config, "ideal", ["gcc"], n_instructions=500_000).run()
    picl = Simulation(config, "picl", ["gcc"], n_instructions=500_000).run()
    print("PiCL overhead: %.1f%%" % ((picl.normalized_to(ideal) - 1) * 100))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from repro.baselines import (
    FEATURE_MATRIX,
    Frm,
    IdealNvm,
    Journaling,
    ShadowPaging,
    ThyNvm,
)
from repro.core import (
    IoConsistencyBuffer,
    OsInterface,
    PiclConfig,
    PiclScheme,
    check_recovered,
    recover_image,
)
from repro.mem import NvmTimings
from repro.sim import (
    SCHEME_NAMES,
    ResultCache,
    RunPoint,
    Simulation,
    SimulationResult,
    SystemConfig,
    run_matrix,
    run_mix,
    run_points,
    run_single,
)
from repro.trace import BENCHMARKS, MULTIPROGRAM_MIXES, get_profile

__version__ = "1.0.0"

__all__ = [
    "PiclScheme",
    "PiclConfig",
    "IdealNvm",
    "Journaling",
    "ShadowPaging",
    "Frm",
    "ThyNvm",
    "FEATURE_MATRIX",
    "Simulation",
    "SimulationResult",
    "SystemConfig",
    "SCHEME_NAMES",
    "NvmTimings",
    "run_single",
    "run_matrix",
    "run_mix",
    "run_points",
    "RunPoint",
    "ResultCache",
    "BENCHMARKS",
    "MULTIPROGRAM_MIXES",
    "get_profile",
    "OsInterface",
    "IoConsistencyBuffer",
    "recover_image",
    "check_recovered",
    "__version__",
]
