"""PiCL itself: the paper's primary contribution.

The three novelties and their homes:

* **Multi-undo logging** — :mod:`repro.core.undo` (ValidFrom/ValidTill
  entries), :mod:`repro.core.epoch` (multiple committed-but-unpersisted
  epochs), :mod:`repro.mem.log_region` (one co-mingled log).
* **Cache-driven logging** — :meth:`repro.core.picl.PiclScheme.on_store`
  (undo data sourced from the cache, no read-log-modify) plus
  :mod:`repro.core.undo_buffer` (on-chip coalescing, bloom hazard guard).
* **Asynchronous cache scan** — :mod:`repro.core.acs`.

Supporting pieces: crash recovery (:mod:`repro.core.recovery`), OS duties
(:mod:`repro.core.os_interface`), I/O consistency under deferred
persistency (:mod:`repro.core.io_consistency`), and the OpenPiton 16 B
tracking-granularity variant (:mod:`repro.core.granularity`).
"""

from repro.core.acs import AcsEngine
from repro.core.availability import (
    availability,
    compute_time_lost_per_day,
    effective_throughput,
    max_recovery_for_nines,
    nines,
    picl_worst_case_recovery_s,
)
from repro.core.bloom import BloomFilter
from repro.core.epoch import EpochManager
from repro.core.granularity import GranularityPolicy, SubBlockPolicy, make_policy
from repro.core.io_consistency import IoConsistencyBuffer, PendingIoWrite
from repro.core.os_interface import EpochBoundaryHandler, OsInterface
from repro.core.picl import PiclConfig, PiclScheme
from repro.core.recovery import (
    RecoveryReport,
    check_recovered,
    recover_image,
    recovery_latency_cycles,
)
from repro.core.undo import ENTRY_BYTES, SUBBLOCK_ENTRY_BYTES, UndoEntry
from repro.core.undo_buffer import UndoBuffer

__all__ = [
    "PiclScheme",
    "PiclConfig",
    "UndoEntry",
    "ENTRY_BYTES",
    "SUBBLOCK_ENTRY_BYTES",
    "UndoBuffer",
    "BloomFilter",
    "AcsEngine",
    "EpochManager",
    "recover_image",
    "check_recovered",
    "recovery_latency_cycles",
    "RecoveryReport",
    "OsInterface",
    "EpochBoundaryHandler",
    "IoConsistencyBuffer",
    "PendingIoWrite",
    "GranularityPolicy",
    "SubBlockPolicy",
    "make_policy",
    "availability",
    "nines",
    "max_recovery_for_nines",
    "compute_time_lost_per_day",
    "effective_throughput",
    "picl_worst_case_recovery_s",
]
