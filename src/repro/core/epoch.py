"""Epoch state machine (Table I of the paper).

Three EIDs matter system-wide:

* **SystemEID** — the currently executing, uncommitted epoch.
* **committed** epochs — finished but not necessarily persisted; with
  multi-undo logging there can be several in flight (up to the ACS-gap).
* **PersistedEID** — the most recent fully persisted, fully recoverable
  checkpoint; the system can always be reverted to it.

Epoch IDs here are full integers; the hardware's 4-bit tags only have to
disambiguate the live window, which :func:`repro.common.eid.check_window_fits`
validates at construction.
"""

from repro.common.eid import DEFAULT_EID_BITS, check_window_fits
from repro.common.errors import SimulationError


class EpochManager:
    """Tracks SystemEID, the committed window, and PersistedEID."""

    def __init__(self, acs_gap=3, eid_bits=DEFAULT_EID_BITS):
        check_window_fits(acs_gap, extra_inflight=1, bits=eid_bits)
        self.acs_gap = acs_gap
        self.eid_bits = eid_bits
        self.system_eid = 0
        #: -1 means only the initial (pre-execution) state is recoverable.
        self.persisted_eid = -1

    # ------------------------------------------------------------------
    # transitions
    # ------------------------------------------------------------------

    def commit(self):
        """Commit the executing epoch; returns (committed_eid, persist_target).

        ``persist_target`` is the epoch whose ACS is now due (commit minus
        the ACS-gap), or None while the pipeline is still filling.
        """
        committed = self.system_eid
        self.system_eid += 1
        target = committed - self.acs_gap
        if target >= 0:
            return committed, target
        return committed, None

    def persist(self, eid):
        """ACS finished for ``eid``: advance the PersistedEID."""
        if eid != self.persisted_eid + 1:
            raise SimulationError(
                "persist order violated: persisting %d after %d"
                % (eid, self.persisted_eid)
            )
        if eid >= self.system_eid:
            raise SimulationError(
                "cannot persist uncommitted epoch %d (SystemEID %d)"
                % (eid, self.system_eid)
            )
        self.persisted_eid = eid

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def committed_unpersisted(self):
        """EIDs committed but not yet persisted, oldest first."""
        return list(range(self.persisted_eid + 1, self.system_eid))

    def in_flight(self):
        """Number of committed-but-unpersisted epochs."""
        return self.system_eid - self.persisted_eid - 1

    def is_transient(self, eid):
        """Stores to lines tagged with the SystemEID need no undo entry."""
        return eid == self.system_eid
