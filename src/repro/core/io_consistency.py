"""I/O consistency under deferred persistency (§IV-C).

I/O reads may proceed immediately, but I/O *writes* (their side effects
escape the recoverable memory state) must be buffered until the epoch they
happened in has been fully persisted — otherwise a crash could roll memory
back to before an externally visible action.

Because ACS defers persistency by the ACS-gap, the effective I/O release
latency is ``epoch_length * acs_gap``. When an I/O write is flagged as
latency-critical, the buffer asks the scheme to run a bulk ACS, persisting
everything outstanding at once and releasing the write immediately.

Unreliable interfaces (TCP/IP and other fault-tolerant protocols, or
idempotent storage operations) can opt out of buffering entirely.
"""


class PendingIoWrite:
    """One buffered I/O write awaiting its epoch's persistence."""

    __slots__ = ("payload", "epoch", "queued_at", "released_at")

    def __init__(self, payload, epoch, queued_at):
        self.payload = payload
        self.epoch = epoch
        self.queued_at = queued_at
        self.released_at = None

    @property
    def delay(self):
        """Cycles between queueing and release (None while pending)."""
        if self.released_at is None:
            return None
        return self.released_at - self.queued_at


class IoConsistencyBuffer:
    """Buffers I/O writes until their epoch persists."""

    def __init__(self, scheme):
        self.scheme = scheme
        self.pending = []
        self.released = []
        scheme.attach_io_buffer(self)

    def io_read(self, now):
        """Reads occur immediately (no side effects to protect)."""
        return now

    def io_write(self, payload, now, critical=False, unreliable=False):
        """Queue an I/O write; returns the cycle at which it is released.

        ``unreliable`` interfaces release immediately (built-in fault
        tolerance); ``critical`` writes force a bulk ACS.
        """
        if unreliable:
            return now
        epoch = self.scheme.epochs.system_eid
        write = PendingIoWrite(payload, epoch, now)
        if critical:
            stall = self.scheme.persist_all_now(now)
            write.released_at = now + stall
            self.released.append(write)
            return write.released_at
        self.pending.append(write)
        return None

    def on_persist(self, persisted_eid, now):
        """Release every write whose epoch is now durable."""
        still_pending = []
        for write in self.pending:
            if write.epoch <= persisted_eid:
                write.released_at = now
                self.released.append(write)
            else:
                still_pending.append(write)
        self.pending = still_pending

    def pending_count(self):
        """Number of I/O writes still awaiting persistence."""
        return len(self.pending)

    def release_delays(self):
        """Observed queue-to-release delays (for the I/O latency study)."""
        return [write.delay for write in self.released]
