"""Tracking-granularity support (the OpenPiton 16 B trade-off, §V-A).

The paper's FPGA prototype tracks modifications at 16 B sub-block
granularity because OpenPiton's private caches use 16 B lines, paying four
EID tags per 64 B LLC line in exchange for smaller undo entries. The
default model tracks whole 64 B lines; this module supplies the sub-block
variant used by the granularity ablation bench.

Sub-block entries are smaller on the NVM log (24 B vs 72 B) but a line
whose sub-blocks are written in the same epoch produces up to four entries
instead of one.
"""

from repro.common.eid import EpochId
from repro.core.undo import ENTRY_BYTES, SUBBLOCK_ENTRY_BYTES


class GranularityPolicy:
    """Line-granularity tracking (the evaluation default)."""

    name = "64B"
    entry_bytes = ENTRY_BYTES
    sub_block_mode = False

    def needs_undo(self, line, system_eid, store_hint):
        """Return the undo ``valid_from`` EID, or None when no undo needed."""
        if line.eid == system_eid:
            return None
        return line.eid

    def apply_store(self, line, system_eid, store_hint):
        """Tag the line with the executing epoch.

        Inlined ``CacheLine.set_eid`` (this runs on every cross-epoch
        store, twice — private line and LLC copy): when the line is the
        LLC copy (undo forwarding retags it without dirtying it), its
        EID-index bucket must move with the tag; for private lines the
        guard falls through in three attribute loads.
        """
        old = line.eid
        if system_eid == old:
            return
        line.eid = system_eid
        if line.sub_eids is None:
            home = line._home
            if home is not None and home.eid_index is not None:
                home.eid_index.retag(line, old)
                if home._vec is not None:
                    home._vec.eidq.append(line)


class SubBlockPolicy(GranularityPolicy):
    """16 B sub-block tracking: four EID tags per 64 B line."""

    name = "16B"
    entry_bytes = SUBBLOCK_ENTRY_BYTES
    sub_block_mode = True

    #: Sub-blocks per 64 B line at 16 B granularity.
    SUB_BLOCKS = 4

    def _sub_index(self, store_hint):
        # Which 16 B sub-block a store touches; the trace is line-granular,
        # so a deterministic mix of the store sequence stands in for the
        # low address bits.
        return store_hint % self.SUB_BLOCKS

    def needs_undo(self, line, system_eid, store_hint):
        """Per-sub-block cross-epoch detection (same contract as the base)."""
        if line.sub_eids is None:
            line.init_sub_eids(self.SUB_BLOCKS)
        sub = self._sub_index(store_hint)
        tagged = line.sub_eids[sub]
        if tagged == system_eid:
            return None
        return tagged

    def apply_store(self, line, system_eid, store_hint):
        """Tag the stored sub-block (and the line) with the executing epoch.

        The None→list switch goes through ``init_sub_eids`` so the LLC
        copy moves to the index's dedicated sub-block bucket; once there
        its membership is keyed by residency alone, so the per-sub-block
        tags and the whole-line ``eid`` can be written raw.
        """
        if line.sub_eids is None:
            line.init_sub_eids(self.SUB_BLOCKS)
        line.sub_eids[self._sub_index(store_hint)] = system_eid
        line.eid = system_eid


def make_policy(tracking_granularity):
    """Build the policy for a 64 B or 16 B tracking granularity."""
    if tracking_granularity == 64:
        return GranularityPolicy()
    if tracking_granularity == 16:
        return SubBlockPolicy()
    raise ValueError(
        "tracking granularity must be 64 or 16, not %r" % tracking_granularity
    )
