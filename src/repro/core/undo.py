"""Multi-undo log entries (Fig 5a of the paper).

An undo entry records the pre-store data of a cache line together with the
validity range ``[valid_from, valid_till)``:

* ``valid_from`` — the epoch in which the block was modified *to* this
  value (or the PersistedEID at entry creation, for clean lines with no
  EID tag, which is a sound under-approximation — the value has been
  unchanged since at least then).
* ``valid_till`` — the epoch in which the block was modified *away* from
  this value (always the SystemEID at entry creation).

Recovering to persisted epoch ``P`` applies exactly the entries with
``valid_from <= P < valid_till``. Once ``valid_till <= PersistedEID`` the
entry can never be needed again and is garbage (see
:meth:`repro.mem.log_region.SuperBlock.expired`).
"""

#: On-NVM size of one undo entry: 64 B data + address tag + two EIDs.
ENTRY_BYTES = 72

#: On-NVM size of a 16 B-granularity entry (OpenPiton tracking ablation).
SUBBLOCK_ENTRY_BYTES = 24


class UndoEntry:
    """One multi-undo log entry."""

    __slots__ = ("addr", "token", "valid_from", "valid_till")

    def __init__(self, addr, token, valid_from, valid_till):
        if valid_till <= valid_from:
            raise ValueError(
                "empty validity range [%d, %d) for %#x"
                % (valid_from, valid_till, addr)
            )
        self.addr = addr
        self.token = token
        self.valid_from = valid_from
        self.valid_till = valid_till

    def covers(self, persisted_eid):
        """True when this entry is needed to revert to ``persisted_eid``."""
        return self.valid_from <= persisted_eid < self.valid_till

    def expired(self, persisted_eid):
        """True once the entry can never cover a future recovery target."""
        return self.valid_till <= persisted_eid

    def __repr__(self):
        return "UndoEntry(addr=%#x, token=%d, valid=[%d, %d))" % (
            self.addr,
            self.token,
            self.valid_from,
            self.valid_till,
        )

    def __eq__(self, other):
        return (
            isinstance(other, UndoEntry)
            and self.addr == other.addr
            and self.token == other.token
            and self.valid_from == other.valid_from
            and self.valid_till == other.valid_till
        )

    def __hash__(self):
        return hash((self.addr, self.token, self.valid_from, self.valid_till))
