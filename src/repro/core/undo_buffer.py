"""The on-chip undo buffer (cache-driven logging's coalescing stage).

Undo entries created by cross-epoch stores are collected here and written
to the NVM log in one sequential burst sized to the NVM row buffer (2 KB,
32 entries by default; "double buffering can be employed to accept further
incoming undo entries while the buffer is being flushed").

Entries of *mixed EIDs* co-mingle freely — that is the point of multi-undo
logging — so a single FIFO suffices. The companion bloom filter answers
"might this address have a pending entry?" for the eviction ordering
hazard; because the exact pending set is also kept (it is the buffer), the
model can measure the filter's false-positive rate precisely.
"""

from repro.common.errors import ConfigurationError
from repro.common.stats import StatCounters
from repro.core.bloom import BloomFilter


class UndoBuffer:
    """FIFO of undo entries with bloom-filtered hazard detection."""

    def __init__(
        self,
        log_region,
        controller,
        capacity_entries=32,
        flush_bytes=2048,
        bloom_bits=4096,
        bloom_hashes=2,
        stats=None,
    ):
        if capacity_entries <= 0:
            raise ConfigurationError("undo buffer needs positive capacity")
        self.log_region = log_region
        self.controller = controller
        self.capacity = capacity_entries
        self.flush_bytes = flush_bytes
        self.bloom = BloomFilter(bloom_bits, bloom_hashes)
        self.stats = stats if stats is not None else StatCounters()
        self._entries = []
        self._pending_addrs = set()
        #: Armed crash plan (None outside fault injection — see repro.fault).
        self.fault_plan = None
        self._entries_created = self.stats.slot("undo.entries_created")

    def __len__(self):
        return len(self._entries)

    @property
    def oldest_valid_till(self):
        """The valid_till of the oldest buffered entry (None when empty)."""
        if not self._entries:
            return None
        return self._entries[0].valid_till

    # ------------------------------------------------------------------
    # filling
    # ------------------------------------------------------------------

    def add(self, entry, now):
        """Buffer an undo entry; flushes when full. Returns stall cycles."""
        self._entries.append(entry)
        self._pending_addrs.add(entry.addr)
        self.bloom.add(entry.addr)
        self._entries_created.value += 1
        if len(self._entries) >= self.capacity:
            return self.flush(now)
        return 0

    def append_batch(self, entries, now):
        """Buffer a run of undo entries with one capacity check per chunk.

        Bit-identical to calling :meth:`add` once per entry at the same
        ``now``: the entries land in FIFO order, the pending set and bloom
        filter absorb the whole run through one batched update each, and a
        capacity crossing flushes at exactly the entry that would have
        triggered it scalar-wise (the remainder then refills the emptied
        buffer). Returns the total stall.

        The batched miss-chain engine only ever hands over runs it kept
        strictly below capacity (it routes the capacity-reaching entry
        through ``add`` so the flush sees the precise issue cycle), but
        the boundary splitting keeps this safe for any caller.
        """
        stall = 0
        start = 0
        n = len(entries)
        while start < n:
            room = self.capacity - len(self._entries)
            chunk = entries[start:start + room] if start or room < n else entries
            self._entries.extend(chunk)
            self._pending_addrs.update(entry.addr for entry in chunk)
            self.bloom.add_batch([entry.addr for entry in chunk])
            self._entries_created.value += len(chunk)
            if len(self._entries) >= self.capacity:
                stall += self.flush(now + stall)
            start += len(chunk)
        return stall

    # ------------------------------------------------------------------
    # hazard check (LLC eviction path)
    # ------------------------------------------------------------------

    def eviction_hazard(self, line_addr, now):
        """Flush first if the eviction may match a buffered entry.

        Returns stall cycles (0 when the filter says the address is clear).
        Tracks false positives by comparing against the exact pending set.
        """
        if not self._entries:
            return 0
        if not self.bloom.might_contain(line_addr):
            return 0
        if line_addr not in self._pending_addrs:
            self.stats.add("undo.bloom_false_positives")
        self.stats.add("undo.forced_flushes")
        return self.flush(now)

    # ------------------------------------------------------------------
    # flushing
    # ------------------------------------------------------------------

    def flush(self, now, backpressure=True):
        """Write every buffered entry to the NVM log sequentially.

        Entries become durable (appended to the log region) the moment the
        flush is issued; timing-wise the burst is a posted sequential write
        and the caller only stalls on channel backpressure. With double
        buffering the buffer accepts new entries immediately.
        ``backpressure=False`` is used when the ACS engine (not a core)
        triggers the flush.
        """
        if not self._entries:
            return 0
        if self.fault_plan is not None:
            torn = self.fault_plan.flush_tear(len(self._entries))
            if torn is not None:
                # Torn flush: only a prefix of the burst reaches NVM
                # before the power fails. Safe by construction — the
                # in-place writes these entries guard are ordered after
                # the flush, so none of them has been issued yet.
                self.log_region.append_many(self._entries[:torn])
                self.fault_plan.trip("undo_flush")
        self.log_region.append_many(self._entries)
        n_entries = len(self._entries)
        burst = min(self.flush_bytes, n_entries * self.log_region.entry_bytes)
        _completion, stall = self.controller.bulk_log_write(
            burst, now, backpressure=backpressure
        )
        self.stats.add("undo.buffer_flushes")
        self.stats.add("undo.entries_flushed", n_entries)
        self._entries = []
        self._pending_addrs = set()
        self.bloom.clear()
        return stall

    def pending_entries(self):
        """Snapshot of the buffered (volatile, not yet durable) entries."""
        return list(self._entries)
