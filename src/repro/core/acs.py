"""Asynchronous Cache Scan (ACS) engine.

ACS is how PiCL persists a checkpoint without a stop-the-world flush
(§III-C): after epoch ``E`` commits, once the ACS-gap has elapsed, the
engine scans the LLC's EID array for valid lines tagged with the persisting
EID, snoops any dirty private copies, writes the matching dirty lines back
in place, and marks them clean. Lines whose undo entries already cover the
target need no write at all, which is why most ACS passes write little
(Fig 6's "only ACS3 actually writes data").

The scan itself touches only the on-chip EID/dirty arrays ("no tag checks
required") so it is charged no core-visible latency; its in-place writes
are posted and contend for NVM bandwidth like any other background write.
Per Fig 12's accounting, ACS in-place writes count as *random* IOPS.

Bulk ACS (§IV-C) checks a whole range of EIDs in one pass; it is the
mechanism that releases I/O writes early when persistency is on the
critical path.
"""

from repro.mem.nvm import AccessCategory


class AcsEngine:
    """Scans the LLC and persists one epoch's dirty lines in place."""

    def __init__(self, hierarchy, controller, stats, sub_block_mode=False):
        self.hierarchy = hierarchy
        self.controller = controller
        self.stats = stats
        self.sub_block_mode = sub_block_mode
        #: Armed crash plan (None outside fault injection — see repro.fault).
        self.fault_plan = None

    def _matches(self, line, lo_eid, hi_eid):
        if self.sub_block_mode and line.sub_eids is not None:
            return any(lo_eid <= eid <= hi_eid for eid in line.sub_eids if eid >= 0)
        return lo_eid <= line.eid <= hi_eid

    def _scan_range(self, lo_eid, hi_eid, now):
        """Write back dirty lines tagged within [lo_eid, hi_eid].

        The scan is asynchronous hardware: its writes are enqueued without
        backpressure (they load the channel, slowing demand traffic, but
        never stall a core), so the returned stall is always zero.
        """
        writes = 0
        for line in self.hierarchy.llc.iter_lines():
            if line.eid < 0 and line.sub_eids is None:
                continue
            if not self._matches(line, lo_eid, hi_eid):
                continue
            self.hierarchy.sync_private_line(line.addr)
            if line.dirty:
                self.controller.writeback(
                    line.addr,
                    line.token,
                    now,
                    category=AccessCategory.RANDOM,
                    backpressure=False,
                )
                line.dirty = False
                writes += 1
                if self.fault_plan is not None:
                    # Crash window: this scan has written some of the
                    # epoch's lines in place but the PersistedEID marker
                    # has not advanced; recovery must still rebuild the
                    # *previous* checkpoint from the (durable) undo log.
                    self.fault_plan.notify("acs_scan")
        return writes, 0

    def scan(self, target_eid, now):
        """One ACS pass for ``target_eid``; returns (writes, stall)."""
        writes, stall = self._scan_range(target_eid, target_eid, now)
        self.stats.add("acs.scans")
        self.stats.add("acs.writebacks", writes)
        return writes, stall

    def bulk_scan(self, lo_eid, hi_eid, now):
        """Bulk ACS: persist every epoch in [lo_eid, hi_eid] in one pass."""
        writes, stall = self._scan_range(lo_eid, hi_eid, now)
        self.stats.add("acs.bulk_scans")
        self.stats.add("acs.writebacks", writes)
        return writes, stall
