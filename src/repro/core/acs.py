"""Asynchronous Cache Scan (ACS) engine.

ACS is how PiCL persists a checkpoint without a stop-the-world flush
(§III-C): after epoch ``E`` commits, once the ACS-gap has elapsed, the
engine scans the LLC's EID array for valid lines tagged with the persisting
EID, snoops any dirty private copies, writes the matching dirty lines back
in place, and marks them clean. Lines whose undo entries already cover the
target need no write at all, which is why most ACS passes write little
(Fig 6's "only ACS3 actually writes data").

The scan itself touches only the on-chip EID/dirty arrays ("no tag checks
required") so it is charged no core-visible latency; its in-place writes
are posted and contend for NVM bandwidth like any other background write.
Per Fig 12's accounting, ACS in-place writes count as *random* IOPS.

Like the hardware, the software scan never walks the LLC: candidates come
from the incrementally maintained :class:`repro.cache.eid_index.EidIndex`
(the EID-array analogue), so a pass costs O(lines that might match), not
O(cache capacity). The candidates are regrouped into the brute-force
sweep's exact visit order and re-filtered by the same predicates, so the
scan stays bit-identical to the ``REPRO_BRUTE_SCAN=1`` full-sweep oracle
— including the order in which writebacks hit the NVM channels and crash
windows fire.

Bulk ACS (§IV-C) checks a whole range of EIDs in one pass; it is the
mechanism that releases I/O writes early when persistency is on the
critical path.
"""

from repro.mem.nvm import AccessCategory


class AcsEngine:
    """Scans the LLC and persists one epoch's dirty lines in place."""

    def __init__(self, hierarchy, controller, stats, sub_block_mode=False):
        self.hierarchy = hierarchy
        self.controller = controller
        self.stats = stats
        self.sub_block_mode = sub_block_mode
        #: Run the original full LLC sweep instead of the EID index
        #: (differential oracle; see repro.cache.cache).
        self._brute_scan = hierarchy.llc._brute_scan
        #: Armed crash plan (None outside fault injection — see repro.fault).
        self.fault_plan = None

    def _matches(self, line, lo_eid, hi_eid):
        if self.sub_block_mode and line.sub_eids is not None:
            return any(lo_eid <= eid <= hi_eid for eid in line.sub_eids if eid >= 0)
        return lo_eid <= line.eid <= hi_eid

    def _iter_scan_lines(self, lo_eid, hi_eid):
        """Lines a scan over [lo_eid, hi_eid] must visit, in sweep order.

        Pulls the candidates from the EID index (sub-block lines plus the
        buckets in range), then walks each touched cache set in MRU order
        — sorted by set id, exactly how ``iter_lines`` would have reached
        them. The walk re-applies ``_matches`` on live state (a set is at
        most ``assoc`` lines), so snapshot staleness cannot change what
        gets scanned: syncs only ever mutate the line being visited.
        """
        llc = self.hierarchy.llc
        if self._brute_scan:
            return llc.iter_lines()
        candidates = llc.eid_index.candidates(lo_eid, hi_eid)
        if not candidates:
            return ()
        shift = llc._line_shift
        mask = llc._set_mask
        sets = llc._sets
        out = []
        for set_id in sorted(
            {(line.addr >> shift) & mask for line in candidates}
        ):
            out.extend(sets[set_id])
        return out

    def _scan_range(self, lo_eid, hi_eid, now):
        """Write back dirty lines tagged within [lo_eid, hi_eid].

        The scan is asynchronous hardware: its writes are enqueued without
        backpressure (they load the channel, slowing demand traffic, but
        never stall a core), so the returned stall is always zero.
        """
        writes = 0
        for line in self._iter_scan_lines(lo_eid, hi_eid):
            if line.eid < 0 and line.sub_eids is None:
                continue
            if not self._matches(line, lo_eid, hi_eid):
                continue
            self.hierarchy.sync_private_line(line.addr)
            if line.dirty:
                self.controller.writeback(
                    line.addr,
                    line.token,
                    now,
                    category=AccessCategory.RANDOM,
                    backpressure=False,
                )
                line.dirty = False
                writes += 1
                if self.fault_plan is not None:
                    # Crash window: this scan has written some of the
                    # epoch's lines in place but the PersistedEID marker
                    # has not advanced; recovery must still rebuild the
                    # *previous* checkpoint from the (durable) undo log.
                    self.fault_plan.notify("acs_scan")
        return writes, 0

    def occupancy(self, lo_eid, hi_eid):
        """Candidate count for a scan over [lo_eid, hi_eid].

        The hardware answers this from the EID array alone; the epoch-close
        path records it per pass. The brute oracle recounts by sweeping so
        the stat stays bit-identical under REPRO_BRUTE_SCAN=1.
        """
        llc = self.hierarchy.llc
        if self._brute_scan:
            return sum(
                1
                for line in llc.iter_lines()
                if line.sub_eids is not None or lo_eid <= line.eid <= hi_eid
            )
        return llc.eid_index.occupancy(lo_eid, hi_eid)

    def scan(self, target_eid, now):
        """One ACS pass for ``target_eid``; returns (writes, stall)."""
        self.stats.add("acs.candidates", self.occupancy(target_eid, target_eid))
        writes, stall = self._scan_range(target_eid, target_eid, now)
        self.stats.add("acs.scans")
        self.stats.add("acs.writebacks", writes)
        return writes, stall

    def bulk_scan(self, lo_eid, hi_eid, now):
        """Bulk ACS: persist every epoch in [lo_eid, hi_eid] in one pass."""
        self.stats.add("acs.candidates", self.occupancy(lo_eid, hi_eid))
        writes, stall = self._scan_range(lo_eid, hi_eid, now)
        self.stats.add("acs.bulk_scans")
        self.stats.add("acs.writebacks", writes)
        return writes, stall
