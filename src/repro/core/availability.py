"""Availability arithmetic for high-frequency checkpointing (§IV-C).

The paper frames PiCL's trade-off — runtime overhead vs recovery latency —
in availability terms:

* "To achieve 99.999%, system must recover within 864ms" (assuming one
  failure per day: 0.001% of 86,400 s is 864 ms).
* "Supposing recovery latency increases to 4.4 s, system availability is
  still 99.99[5]% assuming a mean time between failures (MTBF) of one
  day."
* "A 25% runtime overhead amounts to 21,600 seconds of compute time lost
  per day, or 25% fewer transactions per second" — slowdowns cost far
  more than slightly longer recoveries.

This module implements those relations plus the recovery-latency model
for PiCL's co-mingled log (a worst-case multiple of the single-epoch
undo scan of prior work).
"""

SECONDS_PER_DAY = 86_400.0


def availability(recovery_latency_s, mtbf_s=SECONDS_PER_DAY):
    """Fraction of time the system is up, failing every ``mtbf_s`` seconds.

    Each failure costs one recovery; the classic uptime ratio is
    ``MTBF / (MTBF + MTTR)``.
    """
    if mtbf_s <= 0:
        raise ValueError("MTBF must be positive")
    if recovery_latency_s < 0:
        raise ValueError("recovery latency cannot be negative")
    return mtbf_s / (mtbf_s + recovery_latency_s)


def nines(availability_fraction):
    """Count the leading nines of an availability fraction (2 -> 99%)."""
    if not 0 <= availability_fraction < 1:
        raise ValueError("availability must be in [0, 1)")
    count = 0
    remainder = 1 - availability_fraction
    # The tolerance absorbs float rounding in inputs like 0.99999.
    while remainder <= 0.1 ** (count + 1) * (1 + 1e-9) and count < 12:
        count += 1
    return count


def max_recovery_for_nines(n, mtbf_s=SECONDS_PER_DAY):
    """Longest recovery latency that still yields ``n`` nines.

    ``availability >= 1 - 10**-n`` solves to
    ``MTTR <= MTBF * 10**-n / (1 - 10**-n)``.
    """
    target_downtime = 10.0 ** (-n)
    return mtbf_s * target_downtime / (1 - target_downtime)


def compute_time_lost_per_day(runtime_overhead):
    """Seconds of compute lost per day to a runtime overhead fraction.

    The paper's comparison point: 25% overhead costs a quarter of every
    day's compute — orders of magnitude more than any realistic recovery
    budget.
    """
    if runtime_overhead < 0:
        raise ValueError("overhead cannot be negative")
    return SECONDS_PER_DAY * runtime_overhead / (1 + runtime_overhead)


def effective_throughput(runtime_overhead, recovery_latency_s, mtbf_s=SECONDS_PER_DAY):
    """Throughput relative to an overhead-free, failure-free system.

    Combines both costs: the slowdown scales all useful work by
    ``1 / (1 + overhead)``, and each failure steals one recovery's worth
    of uptime.
    """
    uptime = availability(recovery_latency_s, mtbf_s)
    return uptime / (1 + runtime_overhead)


def picl_worst_case_recovery_s(
    prior_work_recovery_s=0.62, acs_gap=3, comingling_factor=None
):
    """Scale prior work's measured recovery to PiCL's deferred window.

    A study of undo-based recovery "finds that given a checkpoint period
    of 10ms, the worst-case recovery latency is around 620ms"; with ACS
    and co-mingled undo entries "the worst-case recovery latency might be
    lengthened by a few multiples". The default multiple is the number of
    epochs whose entries can be live: the ACS-gap plus the executing
    epoch.
    """
    if comingling_factor is None:
        comingling_factor = acs_gap + 1
    return prior_work_recovery_s * comingling_factor


def compare_schemes(overheads, recovery_latencies_s, mtbf_s=SECONDS_PER_DAY):
    """Rank schemes by effective throughput.

    ``overheads`` and ``recovery_latencies_s`` map scheme name to runtime
    overhead fraction and recovery seconds; returns {scheme: throughput}
    sorted best-first.
    """
    scored = {
        name: effective_throughput(
            overheads[name], recovery_latencies_s.get(name, 0.0), mtbf_s
        )
        for name in overheads
    }
    return dict(sorted(scored.items(), key=lambda item: -item[1]))
