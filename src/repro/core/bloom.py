"""Bloom filter guarding the eviction-before-undo-flush ordering hazard.

PiCL's correctness requires that a cache line is never written in place
before its undo entry is durable (§III-B). The hardware detects the hazard
with a bloom filter over the addresses currently sitting in the on-chip
undo buffer: when an eviction's address *may* match, the buffer is flushed
first. The filter is cleared on every buffer flush, so false positives
only cost an early flush, never correctness.

The paper sizes it at 4096 bits for a 32-entry buffer, making the
false-positive rate insignificant; the size is configurable so the
ablation bench can chart the trade-off.
"""

from repro.common.errors import ConfigurationError
from repro.common.units import is_power_of_two


class BloomFilter:
    """A k-hash bloom filter over line addresses, backed by 64-bit words.

    Word-backed rather than one big int: ``add``/``might_contain`` run on
    every cross-epoch store and every dirty eviction, and setting a bit in
    a single 4096-bit Python int copies the whole thing each time. The
    two-hash default (the paper's configuration) is fully unrolled.
    """

    def __init__(self, n_bits=4096, n_hashes=2):
        if not is_power_of_two(n_bits):
            raise ConfigurationError("bloom filter bits must be a power of two")
        if n_hashes < 1:
            raise ConfigurationError("need at least one hash function")
        self.n_bits = n_bits
        self.n_hashes = n_hashes
        self._mask = n_bits - 1
        self._words = [0] * ((n_bits + 63) >> 6)
        self._population = 0

    def _positions(self, addr):
        # Two independent mixes combined per Kirsch-Mitzenmacher.
        h1 = (addr * 2654435761) & 0xFFFFFFFF
        h2 = ((addr >> 6) * 40503 + 0x9E3779B9) & 0xFFFFFFFF
        for i in range(self.n_hashes):
            yield (h1 + i * h2) & self._mask

    def add(self, addr):
        """Set the address's bits."""
        h1 = (addr * 2654435761) & 0xFFFFFFFF
        h2 = ((addr >> 6) * 40503 + 0x9E3779B9) & 0xFFFFFFFF
        mask = self._mask
        words = self._words
        if self.n_hashes == 2:
            pos = h1 & mask
            words[pos >> 6] |= 1 << (pos & 63)
            pos = (h1 + h2) & mask
            words[pos >> 6] |= 1 << (pos & 63)
        else:
            for i in range(self.n_hashes):
                pos = (h1 + i * h2) & mask
                words[pos >> 6] |= 1 << (pos & 63)
        self._population += 1

    def add_batch(self, addrs):
        """Set the bits of every address in ``addrs`` (one call, not N).

        Bit-identical to ``add`` per address — the batched miss-chain
        engine defers per-store bloom updates and applies them per window
        through this, so the filter contents at any flush boundary match
        the scalar chain's exactly.
        """
        mask = self._mask
        words = self._words
        if self.n_hashes == 2:
            for addr in addrs:
                h1 = (addr * 2654435761) & 0xFFFFFFFF
                pos = h1 & mask
                words[pos >> 6] |= 1 << (pos & 63)
                pos = (h1 + (((addr >> 6) * 40503 + 0x9E3779B9) & 0xFFFFFFFF)) & mask
                words[pos >> 6] |= 1 << (pos & 63)
        else:
            for addr in addrs:
                h1 = (addr * 2654435761) & 0xFFFFFFFF
                h2 = ((addr >> 6) * 40503 + 0x9E3779B9) & 0xFFFFFFFF
                for i in range(self.n_hashes):
                    pos = (h1 + i * h2) & mask
                    words[pos >> 6] |= 1 << (pos & 63)
        self._population += len(addrs)

    def might_contain(self, addr):
        """True when ``addr`` may have been added since the last clear."""
        h1 = (addr * 2654435761) & 0xFFFFFFFF
        h2 = ((addr >> 6) * 40503 + 0x9E3779B9) & 0xFFFFFFFF
        mask = self._mask
        words = self._words
        if self.n_hashes == 2:
            pos = h1 & mask
            if not (words[pos >> 6] >> (pos & 63)) & 1:
                return False
            pos = (h1 + h2) & mask
            return (words[pos >> 6] >> (pos & 63)) & 1 != 0
        for i in range(self.n_hashes):
            pos = (h1 + i * h2) & mask
            if not (words[pos >> 6] >> (pos & 63)) & 1:
                return False
        return True

    def clear(self):
        """Reset the filter (done on each undo-buffer flush)."""
        words = self._words
        for i in range(len(words)):
            words[i] = 0
        self._population = 0

    @property
    def population(self):
        """Number of adds since the last clear (not distinct addresses)."""
        return self._population

    def saturation(self):
        """Fraction of bits set (diagnostic for sizing studies)."""
        set_bits = 0
        for word in self._words:
            set_bits += bin(word).count("1")
        return set_bits / self.n_bits
