"""Bloom filter guarding the eviction-before-undo-flush ordering hazard.

PiCL's correctness requires that a cache line is never written in place
before its undo entry is durable (§III-B). The hardware detects the hazard
with a bloom filter over the addresses currently sitting in the on-chip
undo buffer: when an eviction's address *may* match, the buffer is flushed
first. The filter is cleared on every buffer flush, so false positives
only cost an early flush, never correctness.

The paper sizes it at 4096 bits for a 32-entry buffer, making the
false-positive rate insignificant; the size is configurable so the
ablation bench can chart the trade-off.
"""

from repro.common.errors import ConfigurationError
from repro.common.units import is_power_of_two


class BloomFilter:
    """A k-hash bloom filter over line addresses, backed by one big int."""

    def __init__(self, n_bits=4096, n_hashes=2):
        if not is_power_of_two(n_bits):
            raise ConfigurationError("bloom filter bits must be a power of two")
        if n_hashes < 1:
            raise ConfigurationError("need at least one hash function")
        self.n_bits = n_bits
        self.n_hashes = n_hashes
        self._mask = n_bits - 1
        self._bits = 0
        self._population = 0

    def _positions(self, addr):
        # Two independent mixes combined per Kirsch-Mitzenmacher.
        h1 = (addr * 2654435761) & 0xFFFFFFFF
        h2 = ((addr >> 6) * 40503 + 0x9E3779B9) & 0xFFFFFFFF
        for i in range(self.n_hashes):
            yield (h1 + i * h2) & self._mask

    def add(self, addr):
        """Set the address's bits."""
        # Inlined _positions: add/might_contain run on every cross-epoch
        # store and every dirty eviction, so skip the generator machinery.
        h1 = (addr * 2654435761) & 0xFFFFFFFF
        h2 = ((addr >> 6) * 40503 + 0x9E3779B9) & 0xFFFFFFFF
        mask = self._mask
        bits = self._bits
        for i in range(self.n_hashes):
            bits |= 1 << ((h1 + i * h2) & mask)
        self._bits = bits
        self._population += 1

    def might_contain(self, addr):
        """True when ``addr`` may have been added since the last clear."""
        h1 = (addr * 2654435761) & 0xFFFFFFFF
        h2 = ((addr >> 6) * 40503 + 0x9E3779B9) & 0xFFFFFFFF
        mask = self._mask
        bits = self._bits
        for i in range(self.n_hashes):
            if not (bits >> ((h1 + i * h2) & mask)) & 1:
                return False
        return True

    def clear(self):
        """Reset the filter (done on each undo-buffer flush)."""
        self._bits = 0
        self._population = 0

    @property
    def population(self):
        """Number of adds since the last clear (not distinct addresses)."""
        return self._population

    def saturation(self):
        """Fraction of bits set (diagnostic for sizing studies)."""
        return bin(self._bits).count("1") / self.n_bits
