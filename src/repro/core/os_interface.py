"""OS support duties (§IV-B).

The hardware keeps PiCL simple by pushing bookkeeping to the OS:

* **Log allocation** — the OS allocates a block of NVM (128 MB by default)
  and hands the pointer to the hardware; on exhaustion the hardware raises
  an interrupt and the OS extends the allocation (allocations need not be
  contiguous).
* **Epoch boundary handler** — a periodic timer interrupt that stores the
  non-memory architectural state (register files, condition codes) to a
  per-core OS-visible address; required by *every* epoch-based
  checkpointing scheme, and charged to all of them via
  ``System.epoch_handler_cycles``.
* **Crash handling** — on reboot, read the PersistedEID marker and run the
  backward log scan (:mod:`repro.core.recovery`).
* **Garbage collection** — grouped per superblock by max ValidTill
  (implemented in :mod:`repro.mem.log_region`).
"""

from repro.common.units import MB
from repro.core.recovery import check_recovered, recovery_latency_cycles


class EpochBoundaryHandler:
    """The timer-interrupt handler saving per-core architectural state."""

    #: Registers + condition state saved per core, in cache lines.
    STATE_LINES_PER_CORE = 4

    def __init__(self, n_cores, base_cycles=1000, cycles_per_line=16):
        self.n_cores = n_cores
        self.base_cycles = base_cycles
        self.cycles_per_line = cycles_per_line

    def cost_cycles(self):
        """Handler cost per epoch boundary (interrupt entry + state stores).

        The stores are cacheable, so the cost is pipeline work, not NVM
        traffic.
        """
        stores = self.n_cores * self.STATE_LINES_PER_CORE
        return self.base_cycles + stores * self.cycles_per_line


class OsInterface:
    """The OS half of PiCL: allocation policy and crash handling."""

    def __init__(self, initial_log_bytes=128 * MB, extension_bytes=128 * MB):
        self.initial_log_bytes = initial_log_bytes
        self.extension_bytes = extension_bytes
        self.extensions_granted = 0

    def grant_extension(self, log_region, needed_bytes):
        """Log-exhaustion interrupt: extend the allocation.

        Wired as ``LogRegion.on_exhausted``; returns True when granted.
        """
        grant = max(self.extension_bytes, needed_bytes)
        log_region.capacity_bytes += grant
        self.extensions_granted += 1
        return True

    def handle_crash(self, scheme, reference_snapshot=None):
        """Reboot-time recovery; returns (image, commit_id, report).

        When a reference snapshot is supplied (test mode), the recovered
        image is verified against it and a mismatch raises
        :class:`repro.common.errors.RecoveryError`.
        """
        image, commit_id = scheme.recover()
        report = getattr(scheme, "last_recovery_report", None)
        if reference_snapshot is not None:
            check_recovered(image, reference_snapshot)
        return image, commit_id, report

    def estimate_recovery_latency(self, scheme, timings):
        """Worst-case recovery time for the scheme's current log (§IV-C)."""
        image, _commit_id = scheme.recover()
        del image
        report = scheme.last_recovery_report
        return recovery_latency_cycles(
            report, timings, entry_bytes=scheme.log.entry_bytes
        )
