"""Crash recovery for multi-undo logging (§IV-B "Crash handling procedure").

On a power failure the OS:

1. reads the PersistedEID marker from NVM,
2. scans the undo log *backward* from the tail, applying every entry whose
   validity range covers the PersistedEID (scanning backward makes the
   oldest matching entry for an address win, because it is applied last),
3. stops early as soon as a superblock's max ValidTill drops to or below
   the PersistedEID — entry ValidTills are nondecreasing along the log
   (they are the SystemEID at creation time), so nothing older can match.

The same algorithm, restricted to a single epoch, recovers FRM.
"""

from repro.common.errors import RecoveryError


class RecoveryReport:
    """What a recovery pass did (for tests and the recovery-latency model)."""

    __slots__ = (
        "target_eid",
        "entries_scanned",
        "entries_applied",
        "superblocks_scanned",
        "stopped_early",
    )

    def __init__(self, target_eid):
        self.target_eid = target_eid
        self.entries_scanned = 0
        self.entries_applied = 0
        self.superblocks_scanned = 0
        self.stopped_early = False

    def __repr__(self):
        return (
            "RecoveryReport(target=%d, scanned=%d, applied=%d, "
            "superblocks=%d, stopped_early=%s)"
            % (
                self.target_eid,
                self.entries_scanned,
                self.entries_applied,
                self.superblocks_scanned,
                self.stopped_early,
            )
        )


def recover_image(nvm_image, log_region, persisted_eid, apply_limit=None, verify=True):
    """Rebuild the memory image of checkpoint ``persisted_eid``.

    ``nvm_image`` is the functional NVM contents at crash time (a dict);
    the returned dict is the recovered image. The input is not mutated.

    ``verify`` (default on) checks each examined superblock's checksum and
    header before trusting it — including the block that triggers the
    early stop, since a corrupted ``max_valid_till`` could otherwise
    silently skip live entries. Corruption raises
    :class:`~repro.common.errors.RecoveryError`; blocks beyond the early
    stop hold only expired entries and are never read, matching §IV-B.

    ``apply_limit`` stops the scan after that many entries have been
    applied — it models a *crash during recovery itself* (each applied
    entry is one in-place NVM write). Recovery is restartable: rerunning
    from the partially-applied image yields the same final image, which
    the fault harness asserts.
    """
    image = dict(nvm_image)
    report = RecoveryReport(persisted_eid)
    for block in log_region.iter_superblocks_backward():
        if verify:
            block.verify()
        if block.max_valid_till <= persisted_eid:
            report.stopped_early = True
            break
        report.superblocks_scanned += 1
        for entry in reversed(block.entries):
            report.entries_scanned += 1
            if entry.covers(persisted_eid):
                image[entry.addr] = entry.token
                report.entries_applied += 1
                if apply_limit is not None and report.entries_applied >= apply_limit:
                    return image, report
    return image, report


def check_recovered(recovered, reference_snapshot):
    """Raise :class:`RecoveryError` unless the images match token-exactly.

    Lines absent from either side read as token 0 (initial contents).
    """
    mismatches = {}
    for addr in set(recovered) | set(reference_snapshot):
        got = recovered.get(addr, 0)
        want = reference_snapshot.get(addr, 0)
        if got != want:
            mismatches[addr] = (got, want)
    if mismatches:
        sample = sorted(mismatches.items())[:5]
        raise RecoveryError(
            "recovered image diverges on %d lines, e.g. %s"
            % (len(mismatches), sample)
        )


def recovery_latency_cycles(report, timings, entry_bytes=72):
    """Estimate the recovery pass's NVM time (§IV-C "Recovery Latency").

    The log scan is sequential (bulk reads of superblocks); each applied
    entry costs one random in-place write.
    """
    scan_bytes = report.entries_scanned * entry_bytes
    scan = timings.bulk_read_cycles(max(scan_bytes, 1))
    apply_writes = report.entries_applied * timings.line_write_cycles()
    return scan + apply_writes
