"""PiCL: the paper's scheme — multi-undo logging + cache-driven logging + ACS.

The pieces and where they live:

* EID tags ride on every cache line (:mod:`repro.cache.line`); this scheme
  interprets them.
* Cross-epoch store detection and undo creation: :meth:`PiclScheme.on_store`
  (the Fig 7/Fig 8 state-transition hooks — note the hierarchy itself is
  unmodified, matching "PiCL makes no changes to the cache coherency
  protocol nor to cache eviction policy").
* The on-chip undo buffer and its bloom-filter hazard guard:
  :mod:`repro.core.undo_buffer`.
* Asynchronous cache scan: :mod:`repro.core.acs`.
* The multi-undo log in NVM: :mod:`repro.mem.log_region`.
* Recovery: :mod:`repro.core.recovery`.

Timing character: commits are cheap (bump the SystemEID, run the OS
boundary handler); persistency is deferred to ACS whose writes are posted;
the only core-visible stalls are NVM write-queue backpressure — which is
how the paper gets "less than 1% performance overhead".
"""

import dataclasses

from repro.baselines.base import CrashConsistencyScheme
from repro.common.eid import DEFAULT_EID_BITS
from repro.common.errors import SimulationError
from repro.common.units import KB, MB
from repro.core.acs import AcsEngine
from repro.core.epoch import EpochManager
from repro.core.granularity import make_policy
from repro.core.recovery import recover_image
from repro.core.undo import UndoEntry
from repro.core.undo_buffer import UndoBuffer
from repro.mem.log_region import LogRegion
from repro.mem.nvm import AccessCategory


@dataclasses.dataclass
class PiclConfig:
    """PiCL hardware parameters (paper defaults)."""

    #: Epochs between commit and persist (Fig 4 illustrates a gap of 3).
    acs_gap: int = 3

    #: Width of the hardware EID tag ("4-bit values are sufficient").
    eid_bits: int = DEFAULT_EID_BITS

    #: On-chip undo buffer capacity ("flushed when it is full (32 entries)").
    undo_buffer_entries: int = 32

    #: Flush burst size, matched to the NVM row buffer (2 KB).
    undo_flush_bytes: int = 2 * KB

    #: Bloom filter sizing ("4096 bits vs 32 entries capacity").
    bloom_bits: int = 4096
    bloom_hashes: int = 2

    #: Initial OS log allocation (§IV-B: "e.g., 128MB").
    log_capacity_bytes: int = 128 * MB

    #: Optional hard cap on log growth (None = OS always extends).
    log_max_bytes: int = None

    #: Modification-tracking granularity: 64 (default) or 16 (OpenPiton).
    tracking_granularity: int = 64

    #: Flush the undo buffer on every ACS ("to be conservative, we flush
    #: the undo buffer on every ACS in the evaluations").
    conservative_acs_flush: bool = True


class PiclScheme(CrashConsistencyScheme):
    """The full PiCL mechanism."""

    name = "picl"

    def __init__(self, system, config=None):
        super().__init__(system)
        self.config = config if config is not None else PiclConfig()
        self.epochs = EpochManager(self.config.acs_gap, self.config.eid_bits)
        self.granularity = make_policy(self.config.tracking_granularity)
        self.log = LogRegion(
            capacity_bytes=self.config.log_capacity_bytes,
            entry_bytes=self.granularity.entry_bytes,
            stats=self.stats,
            max_capacity_bytes=self.config.log_max_bytes,
        )
        self.buffer = UndoBuffer(
            self.log,
            self.controller,
            capacity_entries=self.config.undo_buffer_entries,
            flush_bytes=self.config.undo_flush_bytes,
            bloom_bits=self.config.bloom_bits,
            bloom_hashes=self.config.bloom_hashes,
            stats=self.stats,
        )
        self.acs = AcsEngine(
            self.hierarchy,
            self.controller,
            self.stats,
            sub_block_mode=self.granularity.sub_block_mode,
        )
        #: Optional I/O consistency buffer (attach_io_buffer).
        self.io_buffer = None
        self._store_seq = 0
        self._cross_epoch_stores = self.stats.slot("picl.cross_epoch_stores")
        # Both conditions are fixed for the scheme's lifetime; the store
        # hot path tests the combined flag instead of re-deriving them.
        self._plain_stores = (
            self.config.log_max_bytes is None
            and not self.granularity.sub_block_mode
        )

    def attach_io_buffer(self, io_buffer):
        """Register an IoConsistencyBuffer to be released on persists."""
        self.io_buffer = io_buffer

    # ------------------------------------------------------------------
    # cache-driven logging (Fig 7 / Fig 8 hooks)
    # ------------------------------------------------------------------

    def on_store(self, core, line, now):
        """Detect cross-epoch stores and capture undo data from the cache."""
        self._store_seq += 1
        # Cheap same-epoch same-line store: the dominant case at 64 B
        # granularity — nothing to log, no cap to police.
        if self._plain_stores and line.eid == self.epochs.system_eid:
            return 0
        stall = 0
        if self.config.log_max_bytes is not None:
            # Must happen before the undo entry is created: a forced
            # persist advances the SystemEID, and this store belongs to
            # the new epoch.
            stall = self._relieve_log_pressure(now)
        system_eid = self.epochs.system_eid
        valid_from = self.granularity.needs_undo(line, system_eid, self._store_seq)
        if valid_from is None:
            return stall
        if valid_from < 0:
            # A clean line with no EID: the in-NVM value has been stable
            # since at least the PersistedEID (§IV-A).
            valid_from = self.epochs.persisted_eid
        entry = UndoEntry(line.addr, line.token, valid_from, system_eid)
        stall += self.buffer.add(entry, now + stall)
        self.granularity.apply_store(line, system_eid, self._store_seq)
        self._cross_epoch_stores.value += 1
        # Undo forwarding: keep the LLC's EID tag current so ACS and the
        # eviction path see the line's true epoch (Fig 8).
        llc_line = self.hierarchy.llc._tags.get(line.addr)
        if llc_line is None:
            raise SimulationError(
                "inclusion violated: stored line %#x absent from LLC" % line.addr
            )
        if llc_line is not line:
            self.granularity.apply_store(llc_line, system_eid, self._store_seq)
        return stall

    def on_store_repeat(self, core, line, count, now):
        """Batch repeated same-epoch stores (coalescing fast path).

        Safe only when every one of the ``count`` stores is provably the
        cheap branch of :meth:`on_store`: no hard log cap (so no pressure
        relief can fire), line-granularity tracking (sub-block tracking
        rotates the store sequence across sub-blocks, so repeats are not
        uniform no-ops), and the line already tagged with the executing
        epoch (``needs_undo`` returns None). Only the store sequence
        advances, exactly as ``count`` individual calls would.
        """
        if not self._plain_stores:
            return None
        if line.eid != self.epochs.system_eid:
            return None
        self._store_seq += count
        return 0

    def vector_store_filter(self):
        """Columnar store filter: same-epoch store hits are the cheap branch.

        With line-granularity tracking and no hard log cap, a store to an
        L1 line already tagged with the executing epoch takes the cheap
        branch of :meth:`on_store` — only ``_store_seq`` advances, which
        :meth:`on_store_bulk` reproduces. Any other configuration (log
        cap, sub-block tracking) makes every store potentially visible,
        so the columnar path must replay them all exactly.
        """
        if self._plain_stores:
            return self.epochs.system_eid
        return False

    def on_store_bulk(self, count):
        self._store_seq += count

    def miss_engine_profile(self):
        """PiCL opts the miss-chain engine into its inline fast paths.

        ``picl_plain`` asserts the exact preconditions of the cheap
        :meth:`on_store` branch the engine transcribes (no hard log cap,
        64 B tracking): under it, a residual store's full branch is an
        UndoEntry append + ``apply_store`` retags + the undo-forwarding
        inclusion check — all inlinable with deferred bloom/buffer
        batching. ``write_back`` stays flagged as overridden so the
        engine uses its dedicated PiCL transcription (bloom hazard +
        ``pre_inplace`` fault notify) rather than the base one.
        """
        prof = super().miss_engine_profile()
        prof["picl_plain"] = self._plain_stores
        return prof

    def _relieve_log_pressure(self, now):
        """Force a persist when a hard-capped log is nearly full.

        PiCL "is not limited by hardware resources but by memory storage
        for logging" (Fig 14): when the OS cannot extend the log any
        further, the only way to reclaim superblocks is to persist the
        outstanding epochs (bulk ACS) so their entries expire.
        """
        headroom = 2 * self.config.undo_buffer_entries * self.log.entry_bytes
        if self.log.used_bytes + headroom < self.config.log_max_bytes:
            return 0
        self.log.collect_garbage(self.epochs.persisted_eid)
        if self.log.used_bytes + headroom < self.config.log_max_bytes:
            return 0
        stall = self.persist_all_now(now)
        self.stats.add("picl.log_forced_persists")
        return stall

    # ------------------------------------------------------------------
    # eviction path: undo-before-in-place ordering
    # ------------------------------------------------------------------

    def write_back(self, line_addr, token, now):
        """In-place write, preceded by a buffer flush on a bloom hit."""
        stall = self.buffer.eviction_hazard(line_addr, now)
        if self.fault_plan is not None:
            # Crash window: the hazard flush (if any) made the undo
            # entries durable, but the in-place data write has not been
            # issued — NVM still holds the old value.
            self.fault_plan.notify("pre_inplace")
        _completion, extra = self.controller.writeback(
            line_addr, token, now + stall, category=AccessCategory.WRITEBACK
        )
        return stall + extra

    # ------------------------------------------------------------------
    # epoch boundaries: commit cheaply, persist lazily
    # ------------------------------------------------------------------

    def on_epoch_boundary(self, now):
        """Commit cheaply; kick ACS for the epoch trailing by the gap."""
        commit = self._commit_now()
        committed_eid, persist_target = self.epochs.commit()
        if committed_eid != commit:
            raise SimulationError(
                "commit id %d diverged from epoch id %d" % (commit, committed_eid)
            )
        stall = self.system.handler_stall()
        if persist_target is not None:
            stall += self._run_acs(persist_target, now)
        return stall

    def _run_acs(self, target_eid, now):
        """Persist ``target_eid``: flush the buffer, scan, mark durable.

        Everything here is the asynchronous engine's work — no
        backpressure stalls are charged to the cores.
        """
        stall = 0
        if self.config.conservative_acs_flush:
            self.buffer.flush(now, backpressure=False)
        else:
            oldest = self.buffer.oldest_valid_till
            if oldest is not None and oldest <= target_eid:
                self.buffer.flush(now, backpressure=False)
        _writes, scan_stall = self.acs.scan(target_eid, now)
        stall += scan_stall
        self.epochs.persist(target_eid)
        # Durable PersistedEID marker (one small in-place metadata write).
        self.stats.add("picl.persist_marker_writes")
        self.log.collect_garbage(target_eid)
        if self.io_buffer is not None:
            self.io_buffer.on_persist(target_eid, now)
        return stall

    # ------------------------------------------------------------------
    # bulk ACS (§IV-C): persist everything now, for I/O on the critical path
    # ------------------------------------------------------------------

    def persist_all_now(self, now):
        """Forcefully end the epoch and persist every outstanding commit.

        Returns the synchronous stall this costs — this is the escape
        hatch for I/O-critical workloads and clean shutdown.
        """
        commit = self._commit_now()
        committed_eid, _target = self.epochs.commit()
        if committed_eid != commit:
            raise SimulationError("commit id diverged during bulk ACS")
        stall = self.system.handler_stall()
        stall += self.buffer.flush(now)
        lo = self.epochs.persisted_eid + 1
        _writes, scan_stall = self.acs.bulk_scan(lo, committed_eid, now)
        stall += scan_stall
        for eid in range(lo, committed_eid + 1):
            self.epochs.persist(eid)
        self.log.collect_garbage(self.epochs.persisted_eid)
        stall += self.controller.drain(now + stall)
        if self.io_buffer is not None:
            self.io_buffer.on_persist(self.epochs.persisted_eid, now)
        self.stats.add("picl.bulk_acs")
        return stall

    def finalize(self, now):
        """End of run: drain posted traffic (kept comparable across schemes)."""
        stall = self.buffer.flush(now)
        return stall + self.controller.drain(now + stall)

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def recover(self):
        """OS crash-handling procedure (§IV-B)."""
        image, report = recover_image(
            self.controller.snapshot_image(), self.log, self.epochs.persisted_eid
        )
        self.last_recovery_report = report
        return image, self.epochs.persisted_eid
