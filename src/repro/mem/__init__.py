"""Nonvolatile main-memory substrate.

This package models the NVM device (row-buffer timing, sequential vs random
access cost), the memory controller (FCFS, closed-page, posted writes with
backpressure), the functional memory image used for crash-recovery checking,
the log region allocator used by every write-ahead-logging scheme, and the
optional DRAM memory-side cache extension described in the paper's §IV-C.
"""

from repro.mem.controller import MemoryController
from repro.mem.dram_cache import DramCache, DramCacheMode
from repro.mem.image import MemoryImage
from repro.mem.log_region import LogRegion, SuperBlock
from repro.mem.nvm import AccessCategory, NvmDevice
from repro.mem.timing import NvmTimings

__all__ = [
    "NvmTimings",
    "NvmDevice",
    "AccessCategory",
    "MemoryController",
    "MemoryImage",
    "LogRegion",
    "SuperBlock",
    "DramCache",
    "DramCacheMode",
]
