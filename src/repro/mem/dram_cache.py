"""Optional DRAM memory-side cache (paper §IV-C, "DRAM Buffer Extensions").

Systems pairing a low-IOPS NVM with a DRAM layer cache hot regions at page
granularity. The paper argues PiCL composes with both modes:

* **Write-through** — no modification needed: every write still reaches the
  NVM, so PiCL's view of write traffic is unchanged. The DRAM only
  accelerates reads.
* **Write-back** — the DRAM is an inclusive page-granularity cache; PiCL is
  applied *to the DRAM cache* and the LLC is treated like a private cache.
  Dirty pages are volatile until evicted, so the functional NVM image is
  only updated on page write-back.

This module implements both as a layer in front of
:class:`repro.mem.controller.MemoryController`'s device.
"""

from repro.common.address import LINE_SIZE, PAGE_SIZE, page_address
from repro.common.errors import ConfigurationError
from repro.common.units import cycles_from_ns
from repro.mem.nvm import AccessCategory


class DramCacheMode:
    """The two memory-side caching modes of §IV-C."""
    WRITE_THROUGH = "write-through"
    WRITE_BACK = "write-back"


class _DramPage:
    __slots__ = ("page_addr", "dirty", "dirty_lines")

    def __init__(self, page_addr):
        self.page_addr = page_addr
        self.dirty = False
        self.dirty_lines = {}


class DramCache:
    """Set-associative page-granularity memory-side DRAM cache."""

    def __init__(
        self,
        capacity_bytes,
        assoc=8,
        mode=DramCacheMode.WRITE_THROUGH,
        hit_latency_ns=50.0,
        cpu_ghz=2.0,
        page_size=PAGE_SIZE,
    ):
        if capacity_bytes < page_size * assoc:
            raise ConfigurationError("DRAM cache must hold at least one set")
        self.page_size = page_size
        self.assoc = assoc
        self.mode = mode
        self.n_sets = capacity_bytes // (page_size * assoc)
        if self.n_sets == 0:
            raise ConfigurationError("DRAM cache has zero sets")
        self.hit_latency = cycles_from_ns(hit_latency_ns, cpu_ghz)
        self._sets = [[] for _ in range(self.n_sets)]
        self._controller = None

    def attach(self, controller):
        """Bind the cache to its controller (done by MemoryController)."""
        self._controller = controller

    # ------------------------------------------------------------------
    # lookup helpers
    # ------------------------------------------------------------------

    def _set_for(self, page_addr):
        return self._sets[(page_addr // self.page_size) % self.n_sets]

    def _find(self, page_addr):
        cache_set = self._set_for(page_addr)
        for index, page in enumerate(cache_set):
            if page.page_addr == page_addr:
                if index != 0:
                    cache_set.pop(index)
                    cache_set.insert(0, page)
                return page
        return None

    def _fill(self, page_addr, now):
        """Bring a page into DRAM; returns (page, fill_latency)."""
        device = self._controller.device
        finish = device.bulk_read(
            self.page_size, now, category=AccessCategory.DEMAND_READ
        )
        cache_set = self._set_for(page_addr)
        page = _DramPage(page_addr)
        cache_set.insert(0, page)
        if len(cache_set) > self.assoc:
            victim = cache_set.pop()
            self._evict(victim, now)
        return page, finish - now

    def _evict(self, page, now):
        if self.mode == DramCacheMode.WRITE_BACK and page.dirty:
            device = self._controller.device
            device.bulk_write(self.page_size, now, AccessCategory.WRITEBACK)
            for line_addr, token in page.dirty_lines.items():
                self._controller.image.write(line_addr, token)
            self._controller.stats.add("dram.page_writebacks")

    # ------------------------------------------------------------------
    # controller-facing interface
    # ------------------------------------------------------------------

    def read(self, line_addr, now):
        """Read a line through the DRAM cache; returns (latency, token)."""
        page_addr = page_address(line_addr, self.page_size)
        page = self._find(page_addr)
        if page is None:
            page, fill_latency = self._fill(page_addr, now)
            self._controller.stats.add("dram.misses")
            latency = fill_latency + self.hit_latency
        else:
            self._controller.stats.add("dram.hits")
            latency = self.hit_latency
        if line_addr in page.dirty_lines:
            token = page.dirty_lines[line_addr]
        else:
            token = self._controller.image.read(line_addr)
        return latency, token

    def write(self, line_addr, token, now, category=AccessCategory.WRITEBACK):
        """Write a line through the DRAM cache; returns (completion, stall)."""
        page_addr = page_address(line_addr, self.page_size)
        page = self._find(page_addr)
        if page is None:
            page, _fill_latency = self._fill(page_addr, now)
            self._controller.stats.add("dram.misses")
        if self.mode == DramCacheMode.WRITE_THROUGH:
            completion, stall = self._controller.device.write_line(
                line_addr, now, category, LINE_SIZE
            )
            self._controller.image.write(line_addr, token)
            return completion, stall
        page.dirty = True
        page.dirty_lines[line_addr] = token
        return now + self.hit_latency, 0

    def drain_cycles(self, now):
        """Write-back mode never drains implicitly; flush is explicit."""
        return 0

    def flush_all(self, now):
        """Write back every dirty page (used before crash-free shutdown)."""
        for cache_set in self._sets:
            for page in cache_set:
                if page.dirty:
                    self._evict(page, now)
                    page.dirty = False
                    page.dirty_lines.clear()

    def dirty_page_count(self):
        """Dirty (volatile) pages currently held in DRAM."""
        return sum(
            1 for cache_set in self._sets for page in cache_set if page.dirty
        )
