"""Functional memory image.

The simulator does not move real bytes around; instead every store is given
a unique integer *token* by the system, and the image maps line addresses to
the token of the last value written there. Tokens make crash-recovery
checking exact: after recovery, the image must equal, token for token, the
reference snapshot taken at the persisted epoch's boundary.

Unwritten lines read as token 0 ("initial contents").
"""

INITIAL_TOKEN = 0


class MemoryImage:
    """Mapping of line address -> token of the value stored there."""

    def __init__(self):
        self._lines = {}

    def read(self, line_addr):
        """Return the token stored at ``line_addr`` (0 if never written)."""
        return self._lines.get(line_addr, INITIAL_TOKEN)

    def write(self, line_addr, token):
        """Store ``token`` at ``line_addr``."""
        self._lines[line_addr] = token

    def snapshot(self):
        """Return a frozen copy of the image for later comparison."""
        return dict(self._lines)

    def restore(self, snapshot):
        """Replace the image's contents with ``snapshot``."""
        self._lines = dict(snapshot)

    def written_lines(self):
        """Iterate over the line addresses that were ever written."""
        return iter(self._lines)

    def equals_snapshot(self, snapshot):
        """Token-exact comparison against a snapshot (0s are equivalent)."""
        for addr, token in self._lines.items():
            if snapshot.get(addr, INITIAL_TOKEN) != token:
                return False
        for addr, token in snapshot.items():
            if token != INITIAL_TOKEN and self._lines.get(addr, INITIAL_TOKEN) != token:
                return False
        return True

    def differences(self, snapshot):
        """Return {addr: (image_token, snapshot_token)} for mismatched lines."""
        diffs = {}
        addrs = set(self._lines) | set(snapshot)
        for addr in addrs:
            mine = self._lines.get(addr, INITIAL_TOKEN)
            theirs = snapshot.get(addr, INITIAL_TOKEN)
            if mine != theirs:
                diffs[addr] = (mine, theirs)
        return diffs

    def __len__(self):
        return len(self._lines)
