"""NVM device model: channels, row-buffer timing, and IOPS accounting.

The device model captures the two properties of byte-addressable NVM the
paper's analysis rests on (§II-C):

* Random (closed-page, line-sized) accesses pay the full row-miss latency —
  128 ns reads / 368 ns writes in Table IV — so random IOPS are scarce.
* Sequential, row-filling transfers amortize the row cost over a whole
  2 KB row buffer, so bulk log writes are an order of magnitude cheaper per
  byte.

Channel timing uses a deliberately simple two-part approximation per channel:

* Demand (synchronous) reads are FCFS: each read waits for earlier reads,
  pays its service time, plus bounded interference from the posted-write
  stream (at most one in-progress row write, since the controller lets reads
  preempt queued writes).
* Posted writes feed a leaky-bucket backlog that drains at full device
  rate. A posted write only stalls its issuer when the backlog exceeds the
  write-queue limit (backpressure); a synchronous flush stalls until the
  backlog fully drains.

This reproduces the first-order behaviours the paper measures — synchronous
cache-flush stalls scale with dirty-data volume and with NVM write latency,
random logging burns IOPS, sequential logging does not — without simulating
individual banks cycle by cycle.
"""

from repro.common.stats import StatCounters


class AccessCategory:
    """IOPS categories matching Fig 12's breakdown."""

    #: In-place data write-backs (evictions, ACS writes, cache flushes).
    WRITEBACK = "writeback"

    #: Extra random logging operations (undo reads, redo-buffer line ops).
    RANDOM = "random"

    #: Row-filling bulk operations (undo-buffer flushes, page CoW, page WB).
    SEQUENTIAL = "sequential"

    #: Ordinary demand miss fills (not part of Fig 12's write breakdown).
    DEMAND_READ = "demand_read"

    ALL = (WRITEBACK, RANDOM, SEQUENTIAL, DEMAND_READ)


class _Channel:
    """One memory channel: FCFS reads plus a leaky-bucket write backlog."""

    __slots__ = ("read_busy_until", "write_backlog", "backlog_updated_at")

    def __init__(self):
        self.read_busy_until = 0
        self.write_backlog = 0
        self.backlog_updated_at = 0

    def _decay_backlog(self, now):
        if now > self.backlog_updated_at:
            elapsed = now - self.backlog_updated_at
            self.write_backlog = max(0, self.write_backlog - elapsed)
            self.backlog_updated_at = now

    def read(self, now, occupancy, interference_cap):
        """Issue a synchronous read; returns its completion time.

        Reads are FCFS among themselves; the posted-write stream can block
        a read by at most one in-progress row write (the controller lets
        reads preempt queued writes, the classic read-priority model).
        """
        self._decay_backlog(now)
        interference = min(self.write_backlog, interference_cap)
        start = max(now, self.read_busy_until) + interference
        finish = start + occupancy
        self.read_busy_until = finish
        return finish

    def post_write(self, now, occupancy, queue_limit):
        """Queue a posted write; returns (completion_time, issuer_stall)."""
        self._decay_backlog(now)
        stall = 0
        if self.write_backlog > queue_limit:
            stall = self.write_backlog - queue_limit
            self._decay_backlog(now + stall)
        self.write_backlog += occupancy
        finish = self.backlog_updated_at + self.write_backlog
        return finish, stall

    def enqueue_write(self, now, occupancy):
        """Queue a background write with no issuer backpressure.

        Used by autonomous engines (ACS, ThyNVM's overlapped apply) that
        pace themselves: they add channel load — slowing demand traffic
        through the shared backlog — but never stall a core directly.
        """
        self._decay_backlog(now)
        self.write_backlog += occupancy
        return self.backlog_updated_at + self.write_backlog

    def drain_cycles(self, now):
        """Cycles until the posted-write backlog fully drains."""
        self._decay_backlog(now)
        return self.write_backlog


class NvmDevice:
    """The NVM DIMM: timing, channel arbitration, and IOPS counters."""

    def __init__(self, timings, stats=None):
        self.timings = timings
        self.stats = stats if stats is not None else StatCounters()
        self._channels = [_Channel() for _ in range(timings.n_channels)]
        self._row_shift = timings.row_buffer_bytes.bit_length() - 1
        # Pre-resolved IOPS/byte counters: _count runs on every device op.
        self._iops_slots = {
            category: self.stats.slot("nvm.iops.%s" % category)
            for category in AccessCategory.ALL
        }
        self._bytes_written = self.stats.slot("nvm.bytes_written")
        self._bytes_read = self.stats.slot("nvm.bytes_read")
        # Hot-path constants: 64 B line service times, the read-interference
        # cap, the write-queue limit, and (for the common single-channel
        # config) the channel itself, so the demand path skips the address
        # mapping and the per-call timing recomputation.
        self._line_read_occupancy = timings.line_read_cycles(64)
        self._line_write_occupancy = timings.line_write_cycles(64)
        self._interference_cap = timings.row_write_cycles
        self._queue_limit = timings.write_queue_limit_cycles
        self._only_channel = self._channels[0] if len(self._channels) == 1 else None

    # ------------------------------------------------------------------
    # channel selection
    # ------------------------------------------------------------------

    def channel_for(self, addr):
        """Deterministic address-interleaved channel mapping (row granular)."""
        return (addr >> self._row_shift) % len(self._channels)

    def _least_loaded_channel(self, now):
        best = self._channels[0]
        best_backlog = best.drain_cycles(now)
        for channel in self._channels[1:]:
            backlog = channel.drain_cycles(now)
            if backlog < best_backlog:
                best = channel
                best_backlog = backlog
        return best

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    def _count(self, category, ops, size_bytes, is_write):
        cell = self._iops_slots.get(category)
        if cell is not None:
            cell.value += ops
        else:
            self.stats.add("nvm.iops.%s" % category, ops)
        if is_write:
            self._bytes_written.value += size_bytes
        else:
            self._bytes_read.value += size_bytes

    # ------------------------------------------------------------------
    # line (random) operations
    # ------------------------------------------------------------------

    def read_line(self, addr, now, category=AccessCategory.DEMAND_READ, line_size=64):
        """Synchronous line read; returns completion time."""
        if line_size == 64:
            occupancy = self._line_read_occupancy
        else:
            occupancy = self.timings.line_read_cycles(line_size)
        channel = self._only_channel
        if channel is None:
            channel = self._channels[self.channel_for(addr)]
        finish = channel.read(now, occupancy, self._interference_cap)
        cell = self._iops_slots.get(category)
        if cell is not None:
            cell.value += 1
        else:
            self.stats.add("nvm.iops.%s" % category, 1)
        self._bytes_read.value += line_size
        return finish

    def write_line(
        self,
        addr,
        now,
        category=AccessCategory.WRITEBACK,
        line_size=64,
        backpressure=True,
    ):
        """Posted line write; returns (completion_time, issuer_stall)."""
        if line_size == 64:
            occupancy = self._line_write_occupancy
        else:
            occupancy = self.timings.line_write_cycles(line_size)
        channel = self._only_channel
        if channel is None:
            channel = self._channels[self.channel_for(addr)]
        if backpressure:
            finish, stall = channel.post_write(now, occupancy, self._queue_limit)
        else:
            finish, stall = channel.enqueue_write(now, occupancy), 0
        cell = self._iops_slots.get(category)
        if cell is not None:
            cell.value += 1
        else:
            self.stats.add("nvm.iops.%s" % category, 1)
        self._bytes_written.value += line_size
        return finish, stall

    def log_read_line(self, addr, now, line_size=64, backpressure=True):
        """Random log-maintenance read (e.g. FRM's undo read).

        Charged as posted traffic: the core is not waiting on it, but it
        consumes write-path bandwidth and counts as a random IOP.
        """
        occupancy = self.timings.line_read_cycles(line_size)
        channel = self._channels[self.channel_for(addr)]
        if backpressure:
            finish, stall = channel.post_write(
                now, occupancy, self.timings.write_queue_limit_cycles
            )
        else:
            finish, stall = channel.enqueue_write(now, occupancy), 0
        self._count(AccessCategory.RANDOM, 1, line_size, is_write=False)
        return finish, stall

    # ------------------------------------------------------------------
    # bulk (sequential) operations
    # ------------------------------------------------------------------

    def bulk_write(
        self,
        size_bytes,
        now,
        category=AccessCategory.SEQUENTIAL,
        ops=1,
        backpressure=True,
    ):
        """Posted sequential write of ``size_bytes``; one IOP per call.

        Matches the paper's Fig 12 accounting, where a row-filling transfer
        counts as a single operation regardless of its size.
        """
        occupancy = self.timings.bulk_write_cycles(size_bytes)
        channel = self._least_loaded_channel(now)
        if backpressure:
            finish, stall = channel.post_write(
                now, occupancy, self.timings.write_queue_limit_cycles
            )
        else:
            finish, stall = channel.enqueue_write(now, occupancy), 0
        self._count(category, ops, size_bytes, is_write=True)
        return finish, stall

    def bulk_read(self, size_bytes, now, category=AccessCategory.SEQUENTIAL, ops=1):
        """Synchronous sequential read (recovery scans, page CoW source)."""
        occupancy = self.timings.bulk_read_cycles(size_bytes)
        channel = self._least_loaded_channel(now)
        finish = channel.read(now, occupancy, self.timings.row_write_cycles)
        self._count(category, ops, size_bytes, is_write=False)
        return finish

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------

    def drain_cycles(self, now):
        """Cycles until every channel's posted-write backlog drains.

        A synchronous cache flush ends with this: the system stalls until
        all outstanding flush writes are durable.
        """
        return max(channel.drain_cycles(now) for channel in self._channels)
