"""Opt-in banked, open-page NVM device model.

The default device (:class:`repro.mem.nvm.NvmDevice`) models the paper's
closed-page FCFS controller: every isolated line access pays the full
row-miss latency, and only explicit bulk transfers amortize it. This
module adds the obvious fidelity extension: per-bank open rows, so that
*accidental* row locality (two line accesses landing in the same open
row) is rewarded with a cheap column access instead of a full activation.

It exists to answer a fidelity question, not to change the paper's story:
PiCL's advantage comes from *guaranteed* sequential log writes, which an
open-page policy cannot manufacture for the random traffic of the other
schemes. Enable with ``NvmTimings(page_policy="open")``.
"""

from repro.common.errors import ConfigurationError
from repro.common.units import is_power_of_two
from repro.mem.nvm import AccessCategory, NvmDevice

#: Column (row-hit) access cost as a fraction of the row-miss latency.
#: NVM row misses are dominated by the cell-array access; a hit only pays
#: the row-buffer read-out, which is DRAM-like.
ROW_HIT_FRACTION = 0.15


class BankedNvmDevice(NvmDevice):
    """NVM device with per-bank open-row tracking (open-page policy)."""

    def __init__(self, timings, stats=None, n_banks=None):
        if n_banks is None:
            n_banks = getattr(timings, "n_banks", 8)
        if not is_power_of_two(n_banks):
            raise ConfigurationError("n_banks must be a power of two")
        super().__init__(timings, stats)
        self.n_banks = n_banks
        #: Per-channel, per-bank open row index (None = precharged).
        self._open_rows = [
            [None] * n_banks for _ in range(timings.n_channels)
        ]

    # ------------------------------------------------------------------
    # row-buffer bookkeeping
    # ------------------------------------------------------------------

    def _bank_for(self, addr):
        return (addr >> self._row_shift) & (self.n_banks - 1)

    def _row_of(self, addr):
        return addr >> self._row_shift

    def _access_cost(self, addr, base_row_cycles, transfer_cycles):
        """Service time for one line access, updating the open row."""
        channel_idx = self.channel_for(addr)
        bank = self._bank_for(addr)
        row = self._row_of(addr)
        open_row = self._open_rows[channel_idx][bank]
        if open_row == row:
            self.stats.add("nvm.row_hits")
            return int(base_row_cycles * ROW_HIT_FRACTION) + transfer_cycles
        self.stats.add("nvm.row_misses")
        self._open_rows[channel_idx][bank] = row
        return base_row_cycles + transfer_cycles

    # ------------------------------------------------------------------
    # overridden line operations
    # ------------------------------------------------------------------

    def read_line(self, addr, now, category=AccessCategory.DEMAND_READ, line_size=64):
        occupancy = self._access_cost(
            addr, self.timings.row_read_cycles, self.timings.transfer_cycles(line_size)
        )
        channel = self._channels[self.channel_for(addr)]
        finish = channel.read(now, occupancy, self.timings.row_write_cycles)
        self._count(category, 1, line_size, is_write=False)
        return finish

    def write_line(
        self,
        addr,
        now,
        category=AccessCategory.WRITEBACK,
        line_size=64,
        backpressure=True,
    ):
        occupancy = self._access_cost(
            addr, self.timings.row_write_cycles, self.timings.transfer_cycles(line_size)
        )
        channel = self._channels[self.channel_for(addr)]
        if backpressure:
            finish, stall = channel.post_write(
                now, occupancy, self.timings.write_queue_limit_cycles
            )
        else:
            finish, stall = channel.enqueue_write(now, occupancy), 0
        self._count(category, 1, line_size, is_write=True)
        return finish, stall

    def log_read_line(self, addr, now, line_size=64, backpressure=True):
        occupancy = self._access_cost(
            addr, self.timings.row_read_cycles, self.timings.transfer_cycles(line_size)
        )
        channel = self._channels[self.channel_for(addr)]
        if backpressure:
            finish, stall = channel.post_write(
                now, occupancy, self.timings.write_queue_limit_cycles
            )
        else:
            finish, stall = channel.enqueue_write(now, occupancy), 0
        self._count(AccessCategory.RANDOM, 1, line_size, is_write=False)
        return finish, stall

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    def row_hit_rate(self):
        """Fraction of line accesses that hit an open row."""
        hits = self.stats.get("nvm.row_hits")
        misses = self.stats.get("nvm.row_misses")
        total = hits + misses
        if total == 0:
            return 0.0
        return hits / total


def make_device(timings, stats=None):
    """Build the device matching ``timings.page_policy``."""
    policy = getattr(timings, "page_policy", "closed")
    if policy == "closed":
        return NvmDevice(timings, stats)
    if policy == "open":
        return BankedNvmDevice(timings, stats, n_banks=getattr(timings, "n_banks", 8))
    raise ConfigurationError("page_policy must be 'closed' or 'open'")
