"""NVM device timing parameters.

Defaults follow Table IV of the paper: a 64-bit, 12.8 GB/s memory link, an
FCFS closed-page controller, and a byte-addressable NVM with 128 ns row-read
and 368 ns row-write (row-miss) latencies. Because the controller runs a
closed-page policy, every isolated cache-line access pays the full row
latency; only explicitly bulk (row-buffer-filling) transfers amortize it,
which is exactly the property PiCL's 2 KB undo-buffer flush exploits.
"""

import dataclasses

from repro.common.errors import ConfigurationError
from repro.common.units import KB, cycles_from_ns, is_power_of_two


@dataclasses.dataclass
class NvmTimings:
    """Timing and structure parameters of the NVM device and link.

    All ``*_ns`` values are converted to CPU cycles via ``cpu_ghz`` once, at
    construction, and exposed as ``*_cycles`` attributes.
    """

    cpu_ghz: float = 2.0

    #: Row-miss read latency (Table IV: 128 ns).
    row_read_ns: float = 128.0

    #: Row-miss write latency (Table IV: 368 ns).
    row_write_ns: float = 368.0

    #: NVM row-buffer size; the paper assumes at least 2 KB.
    row_buffer_bytes: int = 2 * KB

    #: Link bandwidth in GB/s (Table IV: 64-bit link at 12.8 GB/s).
    link_gb_per_s: float = 12.8

    #: Number of independent memory channels.
    n_channels: int = 1

    #: Posted-write backpressure: a store stalls when the channel backlog
    #: exceeds this many cycles of pending service time.
    write_queue_limit_ns: float = 2000.0

    #: Row-buffer management: "closed" (the paper's controller — every
    #: isolated line access pays the row-miss cost) or "open" (per-bank
    #: open rows via :class:`repro.mem.banked.BankedNvmDevice`).
    page_policy: str = "closed"

    #: Banks per channel (used by the open-page device only).
    n_banks: int = 8

    def __post_init__(self):
        if self.cpu_ghz <= 0:
            raise ConfigurationError("cpu_ghz must be positive")
        if self.row_buffer_bytes <= 0 or not is_power_of_two(self.row_buffer_bytes):
            raise ConfigurationError("row_buffer_bytes must be a power of two")
        if self.n_channels <= 0:
            raise ConfigurationError("n_channels must be positive")
        if self.link_gb_per_s <= 0:
            raise ConfigurationError("link_gb_per_s must be positive")
        if self.page_policy not in ("closed", "open"):
            raise ConfigurationError("page_policy must be 'closed' or 'open'")
        if not is_power_of_two(self.n_banks):
            raise ConfigurationError("n_banks must be a power of two")
        self.row_read_cycles = cycles_from_ns(self.row_read_ns, self.cpu_ghz)
        self.row_write_cycles = cycles_from_ns(self.row_write_ns, self.cpu_ghz)
        self.write_queue_limit_cycles = cycles_from_ns(
            self.write_queue_limit_ns, self.cpu_ghz
        )
        # The hot demand path reads/writes whole 64 B lines millions of
        # times per run; cache their service times once.
        self._line_read_cycles_64 = self.row_read_cycles + self.transfer_cycles(64)
        self._line_write_cycles_64 = self.row_write_cycles + self.transfer_cycles(64)

    def transfer_cycles(self, size_bytes):
        """Cycles the link is occupied transferring ``size_bytes``."""
        nanoseconds = size_bytes / self.link_gb_per_s
        return cycles_from_ns(nanoseconds, self.cpu_ghz)

    def line_read_cycles(self, line_size=64):
        """Service time of one isolated (closed-page) line read."""
        if line_size == 64:
            return self._line_read_cycles_64
        return self.row_read_cycles + self.transfer_cycles(line_size)

    def line_write_cycles(self, line_size=64):
        """Service time of one isolated (closed-page) line write."""
        if line_size == 64:
            return self._line_write_cycles_64
        return self.row_write_cycles + self.transfer_cycles(line_size)

    def bulk_write_cycles(self, size_bytes):
        """Service time of a sequential write of ``size_bytes``.

        The transfer opens one row per row-buffer's worth of data, so a
        2 KB undo-buffer flush costs one row write plus the burst transfer —
        this is the sequential-write advantage the paper relies on.
        """
        rows = max(1, -(-size_bytes // self.row_buffer_bytes))
        return rows * self.row_write_cycles + self.transfer_cycles(size_bytes)

    def bulk_read_cycles(self, size_bytes):
        """Service time of a sequential read of ``size_bytes``."""
        rows = max(1, -(-size_bytes // self.row_buffer_bytes))
        return rows * self.row_read_cycles + self.transfer_cycles(size_bytes)
