"""NVM log region: allocation, superblocks, and garbage collection.

Write-ahead logs (PiCL's undo log, FRM's undo log) live in a contiguous
region of NVM allocated by the OS (§IV-B). The hardware appends entries;
when the region fills up, the OS is interrupted to extend it (allocations
need not be contiguous — we only track total capacity). Entries are grouped
into fixed-size *superblocks* whose expiration is the max ``valid_till`` of
their member entries, which is what makes garbage collection cheap.

The region is also the functional store recovery reads: entries appended
here are durable (appends happen when a buffer flush is handed to the
device, and crashes are injected at operation boundaries).
"""

from repro.common.errors import ConfigurationError, LogExhaustedError, RecoveryError
from repro.common.stats import StatCounters
from repro.common.units import KB, MB


def _entry_fingerprint(entry):
    """The per-entry term folded into a superblock's checksum."""
    return hash((entry.addr, entry.token, entry.valid_from, entry.valid_till))


class SuperBlock:
    """A 4 KB group of log entries sharing one expiration tag.

    Each block carries a checksum folded incrementally over its entries
    (the model of the per-block ECC/CRC a real NVM log would carry).
    Recovery verifies it before trusting a block's entries or its
    ``max_valid_till`` header, so torn superblock writes and bit flips are
    *detected* (:class:`repro.common.errors.RecoveryError`) instead of
    silently mis-recovered.
    """

    __slots__ = ("entries", "max_valid_till", "checksum")

    def __init__(self):
        self.entries = []
        self.max_valid_till = -1
        self.checksum = 0

    def add(self, entry):
        """Add an entry, tracking the block's max ValidTill."""
        self.entries.append(entry)
        self.checksum ^= _entry_fingerprint(entry)
        if entry.valid_till > self.max_valid_till:
            self.max_valid_till = entry.valid_till

    def verify(self):
        """Raise :class:`RecoveryError` unless the block is intact.

        Recomputes the checksum and the ``max_valid_till`` header from the
        entries and compares both against the stored values. Any torn
        write (entries missing relative to the sealed checksum) or bit
        flip (entry fields or header changed in place) shows up as a
        mismatch.
        """
        checksum = 0
        max_valid_till = -1
        for entry in self.entries:
            checksum ^= _entry_fingerprint(entry)
            if entry.valid_till > max_valid_till:
                max_valid_till = entry.valid_till
        if checksum != self.checksum:
            raise RecoveryError(
                "log superblock checksum mismatch (%d entries): torn write "
                "or corrupted entry" % len(self.entries)
            )
        if max_valid_till != self.max_valid_till:
            raise RecoveryError(
                "log superblock header corrupt: max ValidTill %d does not "
                "match entries (%d)" % (self.max_valid_till, max_valid_till)
            )

    def expired(self, persisted_eid):
        """A superblock is dead once no entry can cover the persisted EID.

        An entry with validity ``[valid_from, valid_till)`` is needed while
        recovery might target an epoch ``P`` with ``valid_from <= P <
        valid_till``; recovery only ever targets ``P = PersistedEID``, and
        the PersistedEID only moves forward, so ``valid_till <= persisted``
        means the entry (and a block of only such entries) is garbage.
        """
        return self.max_valid_till <= persisted_eid

    def __len__(self):
        return len(self.entries)


class LogRegion:
    """An OS-allocated, hardware-appended log region in NVM."""

    #: Default OS allocation (§IV-B example: "e.g., 128 MB").
    DEFAULT_CAPACITY = 128 * MB

    #: Default superblock size (§IV-B example: 4 KB blocks).
    DEFAULT_SUPERBLOCK_BYTES = 4 * KB

    def __init__(
        self,
        capacity_bytes=DEFAULT_CAPACITY,
        entry_bytes=72,
        superblock_bytes=DEFAULT_SUPERBLOCK_BYTES,
        stats=None,
        on_exhausted=None,
        max_capacity_bytes=None,
    ):
        if capacity_bytes <= 0:
            raise ConfigurationError("log capacity must be positive")
        if entry_bytes <= 0:
            raise ConfigurationError("entry size must be positive")
        if superblock_bytes < entry_bytes:
            raise ConfigurationError("superblock must hold at least one entry")
        self.capacity_bytes = capacity_bytes
        self.entry_bytes = entry_bytes
        self.superblock_bytes = superblock_bytes
        self.entries_per_superblock = superblock_bytes // entry_bytes
        self.used_bytes = 0
        self.stats = stats if stats is not None else StatCounters()
        self.on_exhausted = on_exhausted
        self.max_capacity_bytes = max_capacity_bytes
        self._superblocks = []
        self._open_block = None
        # Appends run on every flushed undo entry; pre-resolve the cells.
        self._entries_appended = self.stats.slot("log.entries_appended")
        self._bytes_appended = self.stats.slot("log.bytes_appended")

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------

    def append(self, entry):
        """Append one entry (must expose a ``valid_till`` attribute)."""
        size = self.entry_bytes
        if self.used_bytes + size > self.capacity_bytes:
            self._request_extension(size)
        block = self._open_block
        if block is None or len(block) >= self.entries_per_superblock:
            block = SuperBlock()
            self._open_block = block
            self._superblocks.append(block)
        block.add(entry)
        self.used_bytes += size
        self._entries_appended.value += 1
        self._bytes_appended.value += size

    def append_many(self, entries):
        """Append a batch of entries (one undo-buffer flush)."""
        for entry in entries:
            self.append(entry)

    def _request_extension(self, needed):
        """Interrupt the OS to extend the region (§IV-B)."""
        self.stats.add("log.exhaustion_interrupts")
        if self.on_exhausted is not None:
            granted = self.on_exhausted(self, needed)
            if granted:
                return
        if self.max_capacity_bytes is not None:
            new_capacity = min(self.capacity_bytes * 2, self.max_capacity_bytes)
            if new_capacity > self.capacity_bytes:
                self.capacity_bytes = new_capacity
                self.stats.add("log.extensions")
                return
            raise LogExhaustedError(
                "log region full at %d bytes (hard cap %d)"
                % (self.used_bytes, self.max_capacity_bytes)
            )
        # Unlimited growth by default: the OS always grants more memory.
        self.capacity_bytes *= 2
        self.stats.add("log.extensions")

    # ------------------------------------------------------------------
    # reading (recovery) and garbage collection
    # ------------------------------------------------------------------

    def iter_entries_backward(self):
        """Yield entries newest-first, the order the recovery scan uses."""
        for block in reversed(self._superblocks):
            for entry in reversed(block.entries):
                yield entry

    def iter_superblocks_backward(self):
        """Yield superblocks newest-first (recovery's early-stop check)."""
        return reversed(self._superblocks)

    def verify(self):
        """Verify every live superblock (see :meth:`SuperBlock.verify`)."""
        for block in self._superblocks:
            block.verify()

    def collect_garbage(self, persisted_eid):
        """Free every expired superblock; returns bytes reclaimed.

        Only whole superblocks are reclaimed, and only from the head of the
        log (a log is a queue: reclaiming the middle would fragment the
        contiguous region).
        """
        reclaimed = 0
        while self._superblocks and self._superblocks[0].expired(persisted_eid):
            block = self._superblocks.pop(0)
            if block is self._open_block:
                self._open_block = None
            reclaimed += len(block) * self.entry_bytes
        if reclaimed:
            self.used_bytes -= reclaimed
            self.stats.add("log.bytes_reclaimed", reclaimed)
        return reclaimed

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def entry_count(self):
        """Total live entries across all superblocks."""
        return sum(len(block) for block in self._superblocks)

    @property
    def superblock_count(self):
        """Number of live superblocks."""
        return len(self._superblocks)

    def __len__(self):
        return self.entry_count
