"""Memory controller: the interface the cache hierarchy and schemes use.

The controller couples the timing model (:class:`repro.mem.nvm.NvmDevice`)
with the functional memory image (:class:`repro.mem.image.MemoryImage`). All
in-place data writes go through :meth:`writeback` so that the functional
image always reflects what a real NVM DIMM would hold at crash time; the
crash-recovery machinery snapshots and restores that image.

Per Table IV this is an FCFS, closed-page controller. An optional DRAM
memory-side cache (§IV-C of the paper) can be layered in front.
"""

from repro.common.address import LINE_SIZE
from repro.common.stats import StatCounters
from repro.mem.image import MemoryImage
from repro.mem.nvm import AccessCategory, NvmDevice


class MemoryController:
    """FCFS closed-page controller over one NVM device."""

    def __init__(self, timings, stats=None, dram_cache=None):
        from repro.mem.banked import make_device

        self.stats = stats if stats is not None else StatCounters()
        self.device = make_device(timings, self.stats)
        self.image = MemoryImage()
        self.dram_cache = dram_cache
        if dram_cache is not None:
            dram_cache.attach(self)
        self._demand_fills = self.stats.slot("mem.demand_fills")
        self._writebacks = self.stats.slot("mem.writebacks")

    # ------------------------------------------------------------------
    # demand path (used by the cache hierarchy)
    # ------------------------------------------------------------------

    def demand_fill(self, line_addr, now):
        """Fetch a line for a cache miss; returns (latency, token)."""
        if self.dram_cache is not None:
            latency, token = self.dram_cache.read(line_addr, now)
            self._demand_fills.value += 1
            return latency, token
        finish = self.device.read_line(line_addr, now, AccessCategory.DEMAND_READ)
        self._demand_fills.value += 1
        return finish - now, self.image.read(line_addr)

    def writeback(
        self,
        line_addr,
        token,
        now,
        category=AccessCategory.WRITEBACK,
        backpressure=True,
    ):
        """Write a line in place (posted); returns (completion, stall).

        The functional image is updated immediately: once the write is
        handed to the controller it will be durable at any crash point we
        inject (crashes are injected at operation boundaries).
        ``backpressure=False`` marks background-engine traffic that adds
        channel load but never stalls its issuer.
        """
        if self.dram_cache is not None:
            completion, stall = self.dram_cache.write(line_addr, token, now, category)
        else:
            completion, stall = self.device.write_line(
                line_addr, now, category, backpressure=backpressure
            )
            self.image.write(line_addr, token)
        self._writebacks.value += 1
        return completion, stall

    # ------------------------------------------------------------------
    # logging path (used by crash-consistency schemes)
    # ------------------------------------------------------------------

    def log_read_line(self, line_addr, now):
        """Random read of a line's old value for logging (FRM's undo read).

        Returns (old_token, completion, stall).
        """
        token = self.image.read(line_addr)
        completion, stall = self.device.log_read_line(line_addr, now)
        return token, completion, stall

    def log_write_line(self, line_addr, now):
        """Random line-sized write into a log/redo region (not in place)."""
        return self.device.write_line(line_addr, now, AccessCategory.RANDOM)

    def bulk_log_write(self, size_bytes, now, backpressure=True):
        """Sequential log append of ``size_bytes`` (one sequential IOP)."""
        return self.device.bulk_write(
            size_bytes, now, AccessCategory.SEQUENTIAL, backpressure=backpressure
        )

    def bulk_copy(self, size_bytes, now, backpressure=True):
        """Module-local bulk copy (Shadow-Paging's optimized page CoW).

        The read and write both happen inside the memory module, so it
        counts as one sequential operation and does not cross the link;
        we charge one bulk read plus one bulk write of device occupancy but
        no link transfer by using the row costs directly.
        """
        rows = max(1, -(-size_bytes // self.device.timings.row_buffer_bytes))
        occupancy = rows * (
            self.device.timings.row_read_cycles + self.device.timings.row_write_cycles
        )
        channel = self.device._least_loaded_channel(now)
        if backpressure:
            completion, stall = channel.post_write(
                now, occupancy, self.device.timings.write_queue_limit_cycles
            )
        else:
            completion, stall = channel.enqueue_write(now, occupancy), 0
        self.device.stats.add("nvm.iops.%s" % AccessCategory.SEQUENTIAL, 1)
        return completion, stall

    # ------------------------------------------------------------------
    # synchronization and introspection
    # ------------------------------------------------------------------

    def drain(self, now):
        """Stall cycles until all posted writes are durable."""
        cycles = self.device.drain_cycles(now)
        if self.dram_cache is not None:
            cycles = max(cycles, self.dram_cache.drain_cycles(now))
        return cycles

    def read_token(self, line_addr):
        """Functional read of the current in-NVM token (no timing)."""
        return self.image.read(line_addr)

    def write_token(self, line_addr, token):
        """Functional write used by recovery (no timing)."""
        self.image.write(line_addr, token)

    def snapshot_image(self):
        """Snapshot the functional NVM image (crash-injection support)."""
        return self.image.snapshot()


def make_controller(timings=None, stats=None, dram_cache=None):
    """Convenience factory with Table IV defaults."""
    from repro.mem.timing import NvmTimings

    if timings is None:
        timings = NvmTimings()
    if stats is None:
        stats = StatCounters()
    return MemoryController(timings, stats, dram_cache)


#: Re-exported for callers that size transfers in lines.
BYTES_PER_LINE = LINE_SIZE
