"""Fig 13: PiCL undo-log size for eight epochs (240 M instructions).

Paper: "the majority of workloads consumes less than 5 MB of log storage
per eight epochs. For workloads that do produce the heaviest of logging,
they remain within a few hundreds of megabytes" — well within NVM
capacities. We run exactly eight epochs of PiCL per benchmark and report
the log bytes appended, scaled back to the paper's full-size system.
"""

import sys

from repro.common.units import MB
from repro.experiments import parse_experiment_argv
from repro.experiments.presets import get_preset
from repro.experiments.report import amean, format_table, print_header
from repro.sim.parallel import ResultCache, RunPoint, run_keyed
from repro.trace.profiles import BENCHMARKS

#: The figure measures eight epochs' worth of logging.
EPOCHS = 8


def run(preset=None, benchmarks=None, jobs=None, cache=None):
    """Returns {benchmark: (model_scale_mb, extrapolated_paper_mb)}.

    The first number is what the scaled system actually logged; the second
    multiplies by the system scale (a linear extrapolation that
    overestimates mid-tier workloads, whose full-size write sets saturate
    well below working-set size — see EXPERIMENTS.md).
    """
    preset = get_preset(preset)
    config = preset.config()
    n_instructions = config.epoch_instructions * EPOCHS
    benchmarks = benchmarks if benchmarks is not None else BENCHMARKS
    if cache is None:
        cache = ResultCache.from_env()
    pairs = [
        (
            benchmark,
            RunPoint.single(
                config, "picl", benchmark, n_instructions, preset.seed + index * 7919
            ),
        )
        for index, benchmark in enumerate(benchmarks)
    ]
    results = run_keyed(pairs, jobs=jobs, cache=cache)
    return {
        benchmark: (
            results[benchmark].log_bytes_appended / MB,
            results[benchmark].log_bytes_scaled_to_paper() / MB,
        )
        for benchmark in benchmarks
    }


def format_result(log_mb):
    """Render the figure\'s rows as a text table."""
    rows = [[benchmark, raw, big] for benchmark, (raw, big) in log_mb.items()]
    rows.append(
        ["AMean"]
        + [
            amean(values)
            for values in zip(*log_mb.values())
        ]
    )
    return format_table(
        ["benchmark", "model MB", "extrapolated MB"], rows, col_width=18
    )


def main(argv=None):
    """Print the figure for the preset named in argv."""
    argv = argv if argv is not None else sys.argv[1:]
    preset_name, jobs = parse_experiment_argv(argv)
    preset = get_preset(preset_name)
    print_header(
        "Fig 13: PiCL undo log size for eight epochs, at paper scale",
        preset,
        preset.config(),
    )
    print(format_result(run(preset, jobs=jobs)))


if __name__ == "__main__":
    main()
