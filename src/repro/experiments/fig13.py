"""Fig 13: PiCL undo-log size for eight epochs (240 M instructions).

Paper: "the majority of workloads consumes less than 5 MB of log storage
per eight epochs. For workloads that do produce the heaviest of logging,
they remain within a few hundreds of megabytes" — well within NVM
capacities. We run exactly eight epochs of PiCL per benchmark and report
the log bytes appended, scaled back to the paper's full-size system.
"""

import sys

from repro.common.units import MB
from repro.experiments.presets import get_preset
from repro.experiments.report import amean, format_table, print_header
from repro.sim.sweep import run_single
from repro.trace.profiles import BENCHMARKS

#: The figure measures eight epochs' worth of logging.
EPOCHS = 8


def run(preset=None, benchmarks=None):
    """Returns {benchmark: (model_scale_mb, extrapolated_paper_mb)}.

    The first number is what the scaled system actually logged; the second
    multiplies by the system scale (a linear extrapolation that
    overestimates mid-tier workloads, whose full-size write sets saturate
    well below working-set size — see EXPERIMENTS.md).
    """
    preset = get_preset(preset)
    config = preset.config()
    n_instructions = config.epoch_instructions * EPOCHS
    benchmarks = benchmarks if benchmarks is not None else BENCHMARKS
    log_mb = {}
    for index, benchmark in enumerate(benchmarks):
        seed = preset.seed + index * 7919
        result = run_single(config, "picl", benchmark, n_instructions, seed)
        log_mb[benchmark] = (
            result.log_bytes_appended / MB,
            result.log_bytes_scaled_to_paper() / MB,
        )
    return log_mb


def format_result(log_mb):
    """Render the figure\'s rows as a text table."""
    rows = [[benchmark, raw, big] for benchmark, (raw, big) in log_mb.items()]
    rows.append(
        ["AMean"]
        + [
            amean(values)
            for values in zip(*log_mb.values())
        ]
    )
    return format_table(
        ["benchmark", "model MB", "extrapolated MB"], rows, col_width=18
    )


def main(argv=None):
    """Print the figure for the preset named in argv."""
    argv = argv if argv is not None else sys.argv[1:]
    preset = get_preset(argv[0] if argv else None)
    print_header(
        "Fig 13: PiCL undo log size for eight epochs, at paper scale",
        preset,
        preset.config(),
    )
    print(format_result(run(preset)))


if __name__ == "__main__":
    main()
