"""Fig 10: eight-thread multiprogram performance, normalized to Ideal NVM.

Paper: on the Table V mixes W0-W7, prior work costs 1.6x-2.6x while PiCL
stays at ~1.0x — the multi-core case is where synchronous cache flushes
(16 MB of shared LLC) and translation-table pressure (eight write sets in
one table) hurt the most. Lower is better.
"""

import sys

from repro.experiments import parse_experiment_argv
from repro.experiments.presets import get_preset
from repro.experiments.report import format_table, geomean, print_header
from repro.sim.parallel import ResultCache, run_keyed
from repro.sim.sweep import mix_point
from repro.trace.mixes import mix_names

SCHEMES = ("journaling", "shadow", "frm", "thynvm", "picl")

#: Multiprogram runs are eight times the work of single-core ones; two
#: epochs per run keep the experiment tractable at the default presets.
DEFAULT_EPOCHS = 2


def run(preset=None, mixes=None, epochs=DEFAULT_EPOCHS, jobs=None, cache=None):
    """Returns {mix: {scheme: normalized_execution_time}}."""
    preset = get_preset(preset)
    config = preset.config(n_cores=8)
    n_instructions = preset.instructions(config, epochs) // config.n_cores
    mixes = mixes if mixes is not None else mix_names()
    if cache is None:
        cache = ResultCache.from_env()
    pairs = []
    for index, mix in enumerate(mixes):
        seed = preset.seed + index * 104729
        for scheme in ("ideal",) + SCHEMES:
            pairs.append(
                ((mix, scheme), mix_point(config, scheme, mix, n_instructions, seed))
            )
    results = run_keyed(pairs, jobs=jobs, cache=cache)
    normalized = {}
    for mix in mixes:
        ideal = results[(mix, "ideal")]
        normalized[mix] = {
            scheme: results[(mix, scheme)].normalized_to(ideal)
            for scheme in SCHEMES
        }
    return normalized


def format_result(normalized):
    """Render the figure\'s rows as a text table."""
    rows = [
        [mix] + [row[scheme] for scheme in SCHEMES]
        for mix, row in normalized.items()
    ]
    rows.append(
        ["GMean"]
        + [
            geomean(row[scheme] for row in normalized.values())
            for scheme in SCHEMES
        ]
    )
    return format_table(["mix"] + list(SCHEMES), rows)


def main(argv=None):
    """Print the figure for the preset named in argv."""
    argv = argv if argv is not None else sys.argv[1:]
    preset_name, jobs = parse_experiment_argv(argv)
    preset = get_preset(preset_name)
    print_header(
        "Fig 10: eight-thread multiprogram execution time normalized to "
        "Ideal NVM (lower is better)",
        preset,
        preset.config(n_cores=8),
    )
    print(format_result(run(preset, jobs=jobs)))


if __name__ == "__main__":
    main()
