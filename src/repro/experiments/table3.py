"""Table III: hardware overheads of the OpenPiton PiCL prototype.

The paper implements PiCL in Verilog on OpenPiton and synthesizes to a
Xilinx Genesys2 (Kintex-7 325T) FPGA, reporting: total logic overhead
below 1% of LUTs (more than 75% of it in the LLC, which needs the most
buffering), and EID arrays in the L2 and LLC accounting for 4.7% of BRAM.

An FPGA flow cannot run here, so this module reproduces the *storage*
component of Table III analytically — the EID arrays, the undo buffer,
and the bloom filter are exactly sized structures — and reports the
derived BRAM overhead next to the paper's measured figures. The logic
(LUT) component is inherently tool-dependent; we list the paper's
measurements for reference.

OpenPiton specifics modeled (paper §V-A): the L1 is write-through (no EID
tags needed); private L2 lines are 16 B; LLC lines are 64 B, so the LLC
keeps four EID tags per line (the 16 B tracking-granularity trade-off).
"""

import dataclasses
import sys

from repro.common.units import KB
from repro.experiments.report import format_table

#: Xilinx Kintex-7 325T (Genesys2) resources.
FPGA_LUTS = 203800
FPGA_BRAM36 = 445
BRAM36_BITS = 36 * 1024

#: OpenPiton per-tile cache geometry (L1 write-through, 16 B private lines).
OPENPITON = {
    "l1_bytes": 8 * KB,
    "l2_bytes": 8 * KB,
    "l2_line": 16,
    "llc_bytes": 64 * KB,
    "llc_line": 64,
    "eid_bits": 4,
    "sub_blocks_per_llc_line": 4,
}

#: Paper-reported Table III figures (as far as the source text preserves
#: them): logic overhead totals under 1% of LUTs, LLC changes are >75% of
#: it, and the EID arrays cost 4.7% of BRAM.
PAPER_REPORTED = {
    "total_logic_pct_max": 1.0,
    "llc_share_of_logic_min": 0.75,
    "eid_bram_pct": 4.7,
}


@dataclasses.dataclass
class StorageRow:
    """One storage structure and its BRAM footprint."""
    component: str
    bits: int

    @property
    def bram_blocks(self):
        """Whole BRAM36 blocks this structure occupies."""
        # BRAMs allocate in whole blocks.
        return -(-self.bits // BRAM36_BITS)

    @property
    def bram_pct(self):
        """Share of the FPGA's BRAM blocks."""
        return 100.0 * self.bram_blocks / FPGA_BRAM36


def run(geometry=None):
    """Compute PiCL's added storage for the OpenPiton configuration."""
    g = dict(OPENPITON)
    if geometry:
        g.update(geometry)
    eid = g["eid_bits"]
    l2_lines = g["l2_bytes"] // g["l2_line"]
    llc_lines = g["llc_bytes"] // g["llc_line"]
    rows = [
        StorageRow("L1 (write-through, untouched)", 0),
        StorageRow("L2 EID array (4b / 16B line)", l2_lines * eid),
        StorageRow(
            "LLC EID array (4 tags / 64B line)",
            llc_lines * g["sub_blocks_per_llc_line"] * eid,
        ),
        StorageRow("Undo buffer (2KB, double-buffered)", 2 * 2 * KB * 8),
        StorageRow("Bloom filter (4096 bits)", 4096),
        StorageRow("Log pointers / PersistedEID regs", 4 * 64),
    ]
    return rows


def total_bits(rows):
    """Sum of added storage bits across all structures."""
    return sum(row.bits for row in rows)


def format_result(rows):
    """Render the storage table."""
    table_rows = [
        [row.component, row.bits, row.bram_blocks, row.bram_pct]
        for row in rows
    ]
    total = total_bits(rows)
    total_blocks = sum(row.bram_blocks for row in rows)
    table_rows.append(
        ["Total", total, total_blocks, 100.0 * total_blocks / FPGA_BRAM36]
    )
    return format_table(
        ["component", "bits", "BRAM36", "BRAM %"],
        table_rows,
        col_width=10,
        first_col_width=36,
    )


def main(argv=None):
    """Print Table III's analytic model next to the paper's figures."""
    del argv
    rows = run()
    print("Table III: PiCL hardware overhead, analytic storage model")
    print("(Genesys2 / Kintex-7 325T: %d LUTs, %d BRAM36)" % (FPGA_LUTS, FPGA_BRAM36))
    print()
    print(format_result(rows))
    print()
    print("Paper-measured reference points:")
    print("  total logic overhead   : < %.1f%% of LUTs" % PAPER_REPORTED["total_logic_pct_max"])
    print(
        "  LLC share of the logic : > %.0f%%"
        % (100 * PAPER_REPORTED["llc_share_of_logic_min"])
    )
    print("  EID arrays BRAM        : %.1f%%" % PAPER_REPORTED["eid_bram_pct"])


if __name__ == "__main__":
    main()
