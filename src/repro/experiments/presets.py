"""Experiment presets: system scale and instruction budgets.

The paper simulates the most representative 1 B cycles of each benchmark
(multiprogram: 250 M instructions per core). A pure-Python model cannot do
that, so experiments run the whole system shrunk by a power-of-two factor
(see :meth:`repro.sim.config.SystemConfig.scaled`) with proportionally
shorter traces. Two presets are provided:

* ``quick`` — scale 128, ~5 epochs per run: seconds per data point; used
  by default and in CI.
* ``full`` — scale 64, ~8 epochs per run: the numbers EXPERIMENTS.md
  records.

Select with the ``REPRO_PRESET`` environment variable (``quick``/``full``)
or pass a :class:`Preset` explicitly.
"""

import dataclasses
import os

from repro.sim.config import SystemConfig


@dataclasses.dataclass(frozen=True)
class Preset:
    """One experiment sizing."""

    name: str
    scale: int
    epochs_per_run: int
    seed: int = 20180101  # MICRO 2018

    def config(self, **overrides):
        """The scaled system config for this preset."""
        return SystemConfig().scaled(self.scale, **overrides)

    def instructions(self, config=None, epochs=None):
        """Instruction budget giving ``epochs_per_run`` scheduled epochs."""
        if config is None:
            config = self.config()
        if epochs is None:
            epochs = self.epochs_per_run
        return config.epoch_instructions * epochs * config.n_cores


PRESETS = {
    "ci": Preset("ci", scale=512, epochs_per_run=3),
    "quick": Preset("quick", scale=128, epochs_per_run=4),
    "full": Preset("full", scale=64, epochs_per_run=8),
}


def get_preset(name=None):
    """Resolve a preset by name, argument, or ``REPRO_PRESET`` env var."""
    if isinstance(name, Preset):
        return name
    if name is None:
        name = os.environ.get("REPRO_PRESET", "quick")
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(
            "unknown preset %r; known: %s" % (name, ", ".join(sorted(PRESETS)))
        ) from None
