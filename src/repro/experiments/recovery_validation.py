"""Crash-injection recovery validation: the correctness sweep.

Every other experiment measures *performance*; this one checks the claim
performance is worthless without — that each scheme's recovery rebuilds a
consistent checkpoint from any crash point. The fault harness
(:mod:`repro.fault.harness`) crashes real simulations at semantic events
(epoch boundaries ±k references, during an undo-buffer flush, between an
LLC eviction and its log write, mid-ACS scan, a second crash nested
inside recovery), recovers, and compares the image token-for-token
against the architectural oracle snapshot of the recovered commit. NVM
corruption rows (torn superblock writes, bit flips in the log region)
assert *detection*: recovery must raise ``RecoveryError``, never silently
mis-recover.

The sweep is gating: ``main`` raises on any failing cell, so CI fails if
a change breaks crash consistency. Cells need the live post-crash
``Simulation`` object, so they run serially in-process (``--jobs`` is
accepted for CLI uniformity but unused).
"""

import sys

from repro.common.errors import RecoveryError
from repro.experiments import parse_experiment_argv
from repro.experiments.presets import get_preset
from repro.experiments.report import format_table, print_header
from repro.fault.harness import run_crash_matrix

#: Oracle snapshots kept per run; must cover every commit the longest
#: cell (10 epochs, short-epoch ACS override) can produce.
REFERENCE_DEPTH = 512


def run(preset=None, full=False, benchmark="gcc", epochs=8):
    """Run the crash matrix at a preset's scale; returns the outcomes."""
    preset = get_preset(preset)
    config = preset.config(track_reference=True, reference_depth=REFERENCE_DEPTH)
    return run_crash_matrix(
        config,
        benchmark=benchmark,
        epochs=epochs,
        seed=preset.seed,
        full=full,
    )


def format_result(outcomes):
    """Render the matrix as a text table, one validated cell per row."""
    rows = []
    for outcome in outcomes:
        rows.append(
            [
                outcome.event,
                outcome.scheme,
                outcome.status,
                "yes" if outcome.triggered else "NO",
                "-" if outcome.commit_id is None else str(outcome.commit_id),
                outcome.detail[:48],
            ]
        )
    return format_table(
        ["crash point", "scheme", "status", "crashed", "commit", "detail"],
        rows,
    )


def main(argv=None):
    """Print the matrix; raise ``RecoveryError`` if any cell failed."""
    argv = list(argv) if argv is not None else sys.argv[1:]
    full = "--full" in argv
    argv = [arg for arg in argv if arg != "--full"]
    preset_name, _jobs = parse_experiment_argv(argv)
    preset = get_preset(preset_name)
    print_header(
        "Crash-injection recovery validation (%s matrix)"
        % ("full" if full else "quick"),
        preset,
        preset.config(),
    )
    outcomes = run(preset, full=full)
    print(format_result(outcomes))
    failures = [o for o in outcomes if not o.passed]
    untriggered = [o for o in outcomes if not o.triggered]
    print()
    print(
        "%d cells: %d ok, %d corruption detected, %d failed, %d untriggered"
        % (
            len(outcomes),
            sum(1 for o in outcomes if o.status == "ok"),
            sum(1 for o in outcomes if o.status == "detected"),
            len(failures),
            len(untriggered),
        )
    )
    if failures or untriggered:
        # An untriggered cell is a vacuous pass — the crash window never
        # opened, so nothing was validated. Gate on it like a failure.
        raise RecoveryError(
            "crash matrix failed %d cell(s), %d untriggered: %s"
            % (
                len(failures),
                len(untriggered),
                "; ".join(
                    "%s/%s: %s" % (o.scheme, o.event, o.detail or o.status)
                    for o in failures
                )
                or "; ".join(
                    "%s/%s untriggered" % (o.scheme, o.event)
                    for o in untriggered
                ),
            )
        )


if __name__ == "__main__":
    main()
