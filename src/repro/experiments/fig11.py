"""Fig 11: average number of commits per default epoch interval.

Paper: by default there is one commit per 30 M instructions, but
translation-table overflow forces redo-based schemes to commit early —
"Journaling can commit as much as 16 to 64 more frequently than PiCL".
Undo-based schemes (PiCL, FRM) never overflow, so they stay at 1.0.
Lower is better; the paper plots Journaling, Shadow, and PiCL.
"""

import sys

from repro.experiments import parse_experiment_argv
from repro.experiments.presets import get_preset
from repro.experiments.report import format_table, geomean, print_header
from repro.sim.parallel import ResultCache, RunPoint, run_keyed
from repro.trace.profiles import BENCHMARKS

SCHEMES = ("journaling", "shadow", "picl")


def run(preset=None, benchmarks=None, epochs=None, jobs=None, cache=None):
    """Returns {benchmark: {scheme: commits_per_epoch}}."""
    preset = get_preset(preset)
    config = preset.config()
    n_instructions = preset.instructions(config, epochs)
    benchmarks = benchmarks if benchmarks is not None else BENCHMARKS
    if cache is None:
        cache = ResultCache.from_env()
    pairs = []
    for index, benchmark in enumerate(benchmarks):
        seed = preset.seed + index * 7919
        for scheme in SCHEMES:
            pairs.append(
                (
                    (benchmark, scheme),
                    RunPoint.single(config, scheme, benchmark, n_instructions, seed),
                )
            )
    results = run_keyed(pairs, jobs=jobs, cache=cache)
    return {
        benchmark: {
            scheme: results[(benchmark, scheme)].commits_per_epoch
            for scheme in SCHEMES
        }
        for benchmark in benchmarks
    }


def format_result(commits):
    """Render the figure\'s rows as a text table."""
    rows = [
        [benchmark] + [row[scheme] for scheme in SCHEMES]
        for benchmark, row in commits.items()
    ]
    rows.append(
        ["GMean"]
        + [
            geomean(row[scheme] for row in commits.values())
            for scheme in SCHEMES
        ]
    )
    return format_table(["benchmark"] + list(SCHEMES), rows)


def main(argv=None):
    """Print the figure for the preset named in argv."""
    argv = argv if argv is not None else sys.argv[1:]
    preset_name, jobs = parse_experiment_argv(argv)
    preset = get_preset(preset_name)
    print_header(
        "Fig 11: commits per default epoch interval (lower is better; "
        "1.0 = never forced)",
        preset,
        preset.config(),
    )
    print(format_result(run(preset, jobs=jobs)))


if __name__ == "__main__":
    main()
