"""Fig 15: sensitivity to on-chip cache size.

Paper: "the larger the on-chip cache, the longer it takes to synchronously
flush the dirty data at each checkpoint. PiCL generally has no performance
overhead across cache sizes because it asynchronously and opportunistically
scans dirty data. It is noteworthy that ThyNVM's overhead grows faster than
other schemes" (redo-buffer pressure across epochs). We sweep the LLC from
1x to 8x the Table IV size and report the per-scheme geometric-mean
overhead across a representative workload subset.
"""

import sys

from repro.experiments import parse_experiment_argv
from repro.experiments.presets import get_preset
from repro.experiments.report import format_table, geomean, print_header
from repro.sim.parallel import ResultCache, RunPoint, run_keyed

SCHEMES = ("journaling", "shadow", "frm", "thynvm", "picl")

#: LLC size multipliers relative to Table IV's 2 MB/core.
LLC_MULTIPLIERS = (1, 2, 4, 8)

#: A subset spanning the workload categories (full Fig 9 x LLC sweep would
#: be 29x4x6 runs).
BENCHMARKS = ("gcc", "bzip2", "lbm", "gobmk")

#: The banner both ``repro fig15`` and ``repro submit fig15`` print.
TITLE = (
    "Fig 15: gmean execution time normalized to Ideal NVM vs LLC size "
    "(lower is better)"
)


def points(preset=None, benchmarks=None, multipliers=LLC_MULTIPLIERS, epochs=None):
    """The sweep as ``((multiplier, benchmark, scheme), RunPoint)`` pairs."""
    preset = get_preset(preset)
    benchmarks = benchmarks if benchmarks is not None else BENCHMARKS
    pairs = []
    for multiplier in multipliers:
        base = preset.config()
        config = preset.config(
            llc_size_per_core=base.llc_size_per_core * multiplier
        )
        n_instructions = preset.instructions(config, epochs)
        for index, benchmark in enumerate(benchmarks):
            seed = preset.seed + index * 7919
            for scheme in ("ideal",) + SCHEMES:
                pairs.append(
                    (
                        (multiplier, benchmark, scheme),
                        RunPoint.single(
                            config, scheme, benchmark, n_instructions, seed
                        ),
                    )
                )
    return pairs


def tabulate(results):
    """``{(mult, benchmark, scheme): result}`` -> the per-size gmeans."""
    multipliers = []
    benchmarks = []
    for multiplier, benchmark, _scheme in results:
        if multiplier not in multipliers:
            multipliers.append(multiplier)
        if benchmark not in benchmarks:
            benchmarks.append(benchmark)
    sweep = {}
    for multiplier in multipliers:
        per_scheme = {scheme: [] for scheme in SCHEMES}
        for benchmark in benchmarks:
            ideal = results[(multiplier, benchmark, "ideal")]
            for scheme in SCHEMES:
                per_scheme[scheme].append(
                    results[(multiplier, benchmark, scheme)].normalized_to(ideal)
                )
        sweep[multiplier] = {
            scheme: geomean(values) for scheme, values in per_scheme.items()
        }
    return sweep


def run(
    preset=None,
    benchmarks=BENCHMARKS,
    multipliers=LLC_MULTIPLIERS,
    epochs=None,
    jobs=None,
    cache=None,
):
    """Returns {multiplier: {scheme: gmean_normalized_execution}}."""
    if cache is None:
        cache = ResultCache.from_env()
    pairs = points(
        preset, benchmarks=benchmarks, multipliers=multipliers, epochs=epochs
    )
    return tabulate(run_keyed(pairs, jobs=jobs, cache=cache))


def format_result(sweep, base_llc_kb):
    """Render the figure\'s rows as a text table."""
    rows = [
        ["%dx (%dKB)" % (multiplier, base_llc_kb * multiplier)]
        + [per_scheme[scheme] for scheme in SCHEMES]
        for multiplier, per_scheme in sweep.items()
    ]
    return format_table(["LLC size"] + list(SCHEMES), rows, first_col_width=14)


def main(argv=None):
    """Print the figure for the preset named in argv."""
    argv = argv if argv is not None else sys.argv[1:]
    preset_name, jobs = parse_experiment_argv(argv)
    preset = get_preset(preset_name)
    config = preset.config()
    print_header(TITLE, preset, config)
    print(format_result(run(preset, jobs=jobs), config.llc_size_per_core // 1024))


if __name__ == "__main__":
    main()
