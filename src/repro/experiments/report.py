"""Table/series printers shared by the experiment modules.

Every figure module prints the same rows/series the paper's plot shows, as
plain text tables (the repository has no plotting dependency on purpose —
the numbers are the reproduction artifact; see EXPERIMENTS.md).
"""

import math


def geomean(values):
    """Geometric mean (the paper's GMean columns)."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def amean(values):
    """Arithmetic mean (Fig 13 uses AMean)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def format_table(headers, rows, col_width=11, first_col_width=12):
    """Render a list-of-lists as an aligned text table.

    ``rows`` items are ``[label, value, value, ...]``; numeric values are
    formatted to three significant decimals.
    """
    def fmt(value, width):
        """Format one cell, right-aligned."""
        if isinstance(value, float):
            return ("%.*f" % (3 if abs(value) < 10 else 2 if abs(value) < 100 else 1, value)).rjust(width)
        return str(value).rjust(width)

    lines = []
    header_line = headers[0].ljust(first_col_width) + "".join(
        str(h).rjust(col_width) for h in headers[1:]
    )
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        line = str(row[0]).ljust(first_col_width) + "".join(
            fmt(value, col_width) for value in row[1:]
        )
        lines.append(line)
    return "\n".join(lines)


def print_header(title, preset, config):
    """Standard experiment banner."""
    print("=" * 72)
    print(title)
    print(
        "preset=%s  scale=1/%d  epoch=%s instr  llc=%d KB/core  cores=%d"
        % (
            preset.name,
            config.scale,
            config.epoch_instructions,
            config.llc_size_per_core // 1024,
            config.n_cores,
        )
    )
    print("=" * 72)
