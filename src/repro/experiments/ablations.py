"""Ablation studies on PiCL's design choices (DESIGN.md §4).

The paper fixes several parameters with one-line justifications; these
sweeps chart the trade-offs behind them:

* **ACS-gap** — deferring persistency saves bandwidth (lines rewritten
  within the gap never need an in-place write) at the cost of persist
  latency (the recovery point lags by ``gap`` epochs).
* **Undo buffer size** — 2 KB matches the NVM row buffer; smaller buffers
  flush sub-row bursts, larger ones add queueing.
* **Bloom filter size** — small filters force spurious buffer flushes on
  evictions ("4096 bits vs 32 entries" makes them negligible).
* **Tracking granularity** — OpenPiton's 16 B sub-blocks vs the default
  64 B lines: more, smaller undo entries.
* **Epoch length** — PiCL "has reliable performance when using
  checkpoints of up to 100 ms".

Every sweep takes ``jobs``/``cache`` and dispatches its whole grid through
:func:`repro.sim.parallel.run_keyed`, so sweep points run concurrently
(and hit the on-disk result cache) like the numbered figures do.
"""

import dataclasses

from repro.core.picl import PiclConfig
from repro.experiments.presets import get_preset
from repro.sim.parallel import ResultCache, RunPoint, run_keyed

DEFAULT_BENCHMARKS = ("gcc", "lbm", "astar")


def _run_grid(preset, config_points, benchmarks, schemes, jobs, cache):
    """Run schemes x benchmarks for every (point, config, n_instructions).

    ``config_points`` is ``[(point_key, config, n_instructions), ...]``;
    returns ``{(point_key, benchmark, scheme): SimulationResult}``.
    """
    if cache is None:
        cache = ResultCache.from_env()
    pairs = []
    for point_key, config, n_instructions in config_points:
        for index, benchmark in enumerate(benchmarks):
            seed = preset.seed + index * 7919
            for scheme in schemes:
                pairs.append(
                    (
                        (point_key, benchmark, scheme),
                        RunPoint.single(
                            config, scheme, benchmark, n_instructions, seed
                        ),
                    )
                )
    return run_keyed(pairs, jobs=jobs, cache=cache)


def sweep_acs_gap(
    preset=None, gaps=(0, 1, 3), benchmarks=DEFAULT_BENCHMARKS, jobs=None, cache=None
):
    """Returns {gap: {benchmark: {overhead, acs_writebacks, persist_lag}}}."""
    preset = get_preset(preset)
    config_points = []
    for gap in gaps:
        config = preset.config()
        config.picl = dataclasses.replace(config.picl, acs_gap=gap)
        config_points.append((gap, config, preset.instructions(config)))
    grid = _run_grid(
        preset, config_points, benchmarks, ("ideal", "picl"), jobs, cache
    )
    results = {}
    for gap in gaps:
        per_bench = {}
        for benchmark in benchmarks:
            picl = grid[(gap, benchmark, "picl")]
            per_bench[benchmark] = {
                "overhead": picl.normalized_to(grid[(gap, benchmark, "ideal")]),
                "acs_writebacks": picl.stat("acs.writebacks"),
                "persist_lag_epochs": gap,
            }
        results[gap] = per_bench
    return results


def sweep_undo_buffer(
    preset=None,
    entry_counts=(8, 32, 128),
    benchmarks=DEFAULT_BENCHMARKS,
    jobs=None,
    cache=None,
):
    """Returns {entries: {benchmark: {overhead, buffer_flushes}}}."""
    preset = get_preset(preset)
    config_points = []
    for entries in entry_counts:
        config = preset.config()
        config.picl = dataclasses.replace(
            config.picl,
            undo_buffer_entries=entries,
            undo_flush_bytes=entries * 72,
        )
        config_points.append((entries, config, preset.instructions(config)))
    grid = _run_grid(
        preset, config_points, benchmarks, ("ideal", "picl"), jobs, cache
    )
    results = {}
    for entries in entry_counts:
        per_bench = {}
        for benchmark in benchmarks:
            picl = grid[(entries, benchmark, "picl")]
            per_bench[benchmark] = {
                "overhead": picl.normalized_to(grid[(entries, benchmark, "ideal")]),
                "buffer_flushes": picl.stat("undo.buffer_flushes"),
            }
        results[entries] = per_bench
    return results


def sweep_bloom_bits(
    preset=None,
    bit_sizes=(64, 1024, 4096),
    benchmarks=DEFAULT_BENCHMARKS,
    jobs=None,
    cache=None,
):
    """Returns {bits: {benchmark: {forced_flushes, false_positives}}}."""
    preset = get_preset(preset)
    config_points = []
    for bits in bit_sizes:
        config = preset.config()
        config.picl = dataclasses.replace(config.picl, bloom_bits=bits)
        config_points.append((bits, config, preset.instructions(config)))
    grid = _run_grid(preset, config_points, benchmarks, ("picl",), jobs, cache)
    results = {}
    for bits in bit_sizes:
        per_bench = {}
        for benchmark in benchmarks:
            picl = grid[(bits, benchmark, "picl")]
            per_bench[benchmark] = {
                "forced_flushes": picl.stat("undo.forced_flushes"),
                "false_positives": picl.stat("undo.bloom_false_positives"),
            }
        results[bits] = per_bench
    return results


def sweep_granularity(
    preset=None, benchmarks=DEFAULT_BENCHMARKS, jobs=None, cache=None
):
    """Returns {granularity: {benchmark: {overhead, log_bytes, entries}}}."""
    preset = get_preset(preset)
    granularities = (64, 16)
    config_points = []
    for granularity in granularities:
        config = preset.config()
        config.picl = dataclasses.replace(
            config.picl, tracking_granularity=granularity
        )
        config_points.append((granularity, config, preset.instructions(config)))
    grid = _run_grid(
        preset, config_points, benchmarks, ("ideal", "picl"), jobs, cache
    )
    results = {}
    for granularity in granularities:
        per_bench = {}
        for benchmark in benchmarks:
            picl = grid[(granularity, benchmark, "picl")]
            per_bench[benchmark] = {
                "overhead": picl.normalized_to(
                    grid[(granularity, benchmark, "ideal")]
                ),
                "log_bytes": picl.log_bytes_appended,
                "entries": picl.stat("undo.entries_created"),
            }
        results[granularity] = per_bench
    return results


def sweep_epoch_length(
    preset=None,
    multipliers=(0.25, 1, 8),
    benchmarks=DEFAULT_BENCHMARKS,
    jobs=None,
    cache=None,
):
    """Returns {multiplier: {benchmark: {overhead, log_bytes}}}.

    Multiplies the default 30 M-instruction epoch; x16 approximates the
    paper's "up to 100 ms" claim at the default clock.
    """
    preset = get_preset(preset)
    config_points = []
    for multiplier in multipliers:
        base = preset.config()
        config = preset.config(
            epoch_instructions=max(1000, int(base.epoch_instructions * multiplier))
        )
        # same work for all points
        config_points.append((multiplier, config, preset.instructions(base)))
    grid = _run_grid(
        preset, config_points, benchmarks, ("ideal", "picl"), jobs, cache
    )
    results = {}
    for multiplier in multipliers:
        per_bench = {}
        for benchmark in benchmarks:
            picl = grid[(multiplier, benchmark, "picl")]
            per_bench[benchmark] = {
                "overhead": picl.normalized_to(
                    grid[(multiplier, benchmark, "ideal")]
                ),
                "log_bytes": picl.log_bytes_appended,
            }
        results[multiplier] = per_bench
    return results


def format_sweep(results, metric, label, value_label):
    """Render one metric of a sweep as a text table."""
    from repro.experiments.report import format_table

    benchmarks = sorted(next(iter(results.values())))
    headers = [label] + benchmarks
    rows = []
    for point in sorted(results):
        row = [str(point)]
        for benchmark in benchmarks:
            row.append(results[point][benchmark][metric])
        rows.append(row)
    del value_label
    return format_table(headers, rows, first_col_width=12)
