"""Fig 16: sensitivity to NVM write latency.

The paper's source text truncates mid-sentence here ("NVM write latencies:
To see how different byte-addressable NVMs with different write latencies
would affect the results, ..."), so we reproduce the study it sets up: the
row-miss write latency is swept from DRAM-like (68 ns) through Table IV's
368 ns to slow SCM (968 ns), and each scheme's gmean overhead is reported.
Schemes that put random writes or synchronous flushes on the critical path
degrade with write latency; PiCL's sequential, posted logging should not.
"""

import dataclasses
import sys

from repro.experiments import parse_experiment_argv
from repro.experiments.presets import get_preset
from repro.experiments.report import format_table, geomean, print_header
from repro.mem.timing import NvmTimings
from repro.sim.parallel import ResultCache, RunPoint, run_keyed

SCHEMES = ("journaling", "shadow", "frm", "thynvm", "picl")

#: Row-miss write latencies (ns); Table IV's default is 368.
WRITE_LATENCIES_NS = (68, 368, 968)

BENCHMARKS = ("gcc", "bzip2", "lbm", "gobmk")


def run(
    preset=None,
    benchmarks=BENCHMARKS,
    latencies=WRITE_LATENCIES_NS,
    epochs=None,
    jobs=None,
    cache=None,
):
    """Returns {write_ns: {scheme: gmean_normalized_execution}}."""
    preset = get_preset(preset)
    if cache is None:
        cache = ResultCache.from_env()
    pairs = []
    for write_ns in latencies:
        config = preset.config(nvm=NvmTimings(row_write_ns=float(write_ns)))
        n_instructions = preset.instructions(config, epochs)
        for index, benchmark in enumerate(benchmarks):
            seed = preset.seed + index * 7919
            for scheme in ("ideal",) + SCHEMES:
                pairs.append(
                    (
                        (write_ns, benchmark, scheme),
                        RunPoint.single(
                            config, scheme, benchmark, n_instructions, seed
                        ),
                    )
                )
    results = run_keyed(pairs, jobs=jobs, cache=cache)
    sweep = {}
    for write_ns in latencies:
        per_scheme = {scheme: [] for scheme in SCHEMES}
        for benchmark in benchmarks:
            ideal = results[(write_ns, benchmark, "ideal")]
            for scheme in SCHEMES:
                per_scheme[scheme].append(
                    results[(write_ns, benchmark, scheme)].normalized_to(ideal)
                )
        sweep[write_ns] = {
            scheme: geomean(values) for scheme, values in per_scheme.items()
        }
    return sweep


def format_result(sweep):
    """Render the figure\'s rows as a text table."""
    rows = [
        ["%d ns" % write_ns] + [per_scheme[scheme] for scheme in SCHEMES]
        for write_ns, per_scheme in sweep.items()
    ]
    return format_table(["row write"] + list(SCHEMES), rows)


def main(argv=None):
    """Print the figure for the preset named in argv."""
    argv = argv if argv is not None else sys.argv[1:]
    preset_name, jobs = parse_experiment_argv(argv)
    preset = get_preset(preset_name)
    print_header(
        "Fig 16: gmean execution time normalized to Ideal NVM vs NVM "
        "row-write latency (lower is better)",
        preset,
        preset.config(),
    )
    print(format_result(run(preset, jobs=jobs)))


if __name__ == "__main__":
    main()
