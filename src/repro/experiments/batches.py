"""Figure batches: a whole figure as one schedulable unit of work.

The sweep service (and anything else that wants to run "all of Fig 9"
without caring how it decomposes) looks figures up here. Each entry
knows how to expand itself into keyed :class:`~repro.sim.parallel.RunPoint`
pairs and how to render a ``{key: result}`` map back into exactly the
table the figure's own ``main()`` prints — so a batch submitted through
the daemon is byte-identical, banner included, to the serial CLI run.

Figures register by exposing ``points(preset, benchmarks=None,
epochs=None)`` / ``tabulate(results)`` / ``TITLE`` (see
:mod:`repro.experiments.fig09`); adding one here makes it submittable
via ``repro submit <name>`` and the protocol's ``figure`` form.
"""

import dataclasses

from repro.experiments.presets import get_preset


@dataclasses.dataclass(frozen=True)
class FigureBatch:
    """One registered figure: decomposition plus rendering."""

    name: str
    title: str
    points: object  # (preset=None, benchmarks=None, epochs=None) -> pairs
    render: object  # ({key: result}, preset) -> table text


def _fig09():
    from repro.experiments import fig09

    return FigureBatch(
        "fig09",
        fig09.TITLE,
        fig09.points,
        lambda results, preset: fig09.format_result(fig09.tabulate(results)),
    )


def _fig15():
    from repro.experiments import fig15

    return FigureBatch(
        "fig15",
        fig15.TITLE,
        fig15.points,
        lambda results, preset: fig15.format_result(
            fig15.tabulate(results),
            get_preset(preset).config().llc_size_per_core // 1024,
        ),
    )


_REGISTRY = {
    "fig09": _fig09,
    "fig15": _fig15,
}


def figure_names():
    """The figures submittable as service batches."""
    return sorted(_REGISTRY)


def get_figure(name):
    """The :class:`FigureBatch` for ``name`` (KeyError names the known)."""
    try:
        builder = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            "unknown figure batch %r; known: %s"
            % (name, ", ".join(figure_names()))
        ) from None
    return builder()


def figure_points(name, preset=None, benchmarks=None, epochs=None):
    """Decompose ``name`` into its ``(key, RunPoint)`` pairs."""
    return get_figure(name).points(
        preset, benchmarks=benchmarks, epochs=epochs
    )
