"""Workload-profile calibration tool.

Runs each benchmark profile against the Ideal-NVM system and reports the
quantities the figures are sensitive to:

* IPC and hierarchy hit rates (sanity: compute-bound benchmarks should be
  fast, streaming/pointer ones memory-bound),
* distinct 64 B blocks and 4 KB pages *stored to* per scheduled epoch —
  these, measured against the translation-table capacities, determine how
  often Journaling/Shadow-Paging overflow (Fig 11/14),
* dirty-line counts at epoch boundaries (flush volume for Fig 9/15).

Run as ``python -m repro.experiments.calibrate [preset]``.
"""

import sys

from repro.common.address import page_address
from repro.experiments import parse_experiment_argv
from repro.experiments.presets import get_preset
from repro.sim.simulator import Simulation
from repro.trace.profiles import BENCHMARKS, get_profile
from repro.trace.synthetic import make_trace


def trace_write_sets(profile, n_instructions, epoch_instructions, seed):
    """Distinct blocks/pages stored per epoch, straight from the trace."""
    trace = make_trace(profile, n_instructions, seed=seed)
    blocks = set()
    pages = set()
    per_epoch_blocks = []
    per_epoch_pages = []
    instructions = 0
    boundary = epoch_instructions
    for chunk in trace.chunks():
        for gap, addr, is_write in zip(chunk.gaps, chunk.addrs, chunk.writes):
            instructions += gap + 1
            if is_write:
                blocks.add(addr)
                pages.add(page_address(addr))
            if instructions >= boundary:
                per_epoch_blocks.append(len(blocks))
                per_epoch_pages.append(len(pages))
                blocks.clear()
                pages.clear()
                boundary += epoch_instructions
    return per_epoch_blocks, per_epoch_pages


def calibrate_one(name, preset):
    """Measure one benchmark's calibration quantities."""
    config = preset.config()
    profile = config.scale_profile(get_profile(name))
    n_instr = preset.instructions(config)
    sim = Simulation(config, "ideal", [name], n_instr, seed=preset.seed)
    result = sim.run()
    stats = result.stats
    refs = stats.get("loads") + stats.get("stores")
    l1_rate = stats.get("l1.hits") / max(1, refs)
    llc_miss_rate = stats.get("llc.misses") / max(1, refs)
    blocks, pages = trace_write_sets(
        profile, n_instr, config.epoch_instructions, preset.seed
    )
    mean_blocks = sum(blocks) / max(1, len(blocks))
    mean_pages = sum(pages) / max(1, len(pages))
    return {
        "benchmark": name,
        "ipc": result.ipc,
        "l1_hit_rate": l1_rate,
        "llc_miss_rate": llc_miss_rate,
        "blocks_per_epoch": mean_blocks,
        "pages_per_epoch": mean_pages,
        "journal_pressure": mean_blocks / config.journal_table_entries,
        "shadow_pressure": mean_pages / config.shadow_table_entries,
    }


def main(argv=None):
    """Print the calibration table for every benchmark."""
    argv = argv if argv is not None else sys.argv[1:]
    preset_name, _jobs = parse_experiment_argv(argv)
    preset = get_preset(preset_name)
    config = preset.config()
    print(
        "preset=%s scale=%d epoch=%d instr jtable=%d stable=%d"
        % (
            preset.name,
            config.scale,
            config.epoch_instructions,
            config.journal_table_entries,
            config.shadow_table_entries,
        )
    )
    header = "%-12s %6s %6s %6s %9s %8s %7s %7s" % (
        "benchmark",
        "ipc",
        "l1%",
        "llcM%",
        "blk/ep",
        "pg/ep",
        "Jx",
        "Sx",
    )
    print(header)
    for name in BENCHMARKS:
        row = calibrate_one(name, preset)
        print(
            "%-12s %6.3f %6.1f %6.1f %9.0f %8.0f %7.1f %7.1f"
            % (
                row["benchmark"],
                row["ipc"],
                row["l1_hit_rate"] * 100,
                row["llc_miss_rate"] * 100,
                row["blocks_per_epoch"],
                row["pages_per_epoch"],
                row["journal_pressure"],
                row["shadow_pressure"],
            )
        )


if __name__ == "__main__":
    main()
