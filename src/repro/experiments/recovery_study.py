"""Recovery latency and availability study (paper §IV-C).

Not a numbered figure, but a quantified argument the paper makes and we
can measure: PiCL lengthens worst-case recovery "by a few multiples"
(co-mingled entries across the ACS window) yet the availability cost is
negligible next to the runtime overhead it eliminates.

For each ACS-gap we run a real workload, crash at the worst point (just
before the next persist, when the live log is largest), time the recovery
scan with the NVM model, and fold the measured runtime overhead and
recovery latency into effective throughput at a one-day MTBF.
"""

import dataclasses
import sys

from repro.core.availability import (
    SECONDS_PER_DAY,
    availability,
    effective_throughput,
)
from repro.core.recovery import recovery_latency_cycles
from repro.experiments import parse_experiment_argv
from repro.experiments.presets import get_preset
from repro.experiments.report import format_table, print_header
from repro.sim.parallel import ResultCache, RunPoint, run_keyed
from repro.sim.simulator import Simulation


def measure(preset=None, benchmark="gcc", gaps=(0, 1, 3, 7), jobs=None, cache=None):
    """Returns {gap: {overhead, recovery_cycles, recovery_entries,
    availability, effective_throughput}}."""
    preset = get_preset(preset)
    if cache is None:
        cache = ResultCache.from_env()
    configs = {}
    pairs = []
    for gap in gaps:
        config = preset.config(track_reference=True)
        config.picl = dataclasses.replace(config.picl, acs_gap=gap)
        configs[gap] = (config, preset.instructions(config))
        for scheme in ("ideal", "picl"):
            pairs.append(
                (
                    (gap, scheme),
                    RunPoint.single(
                        config, scheme, benchmark, configs[gap][1], preset.seed
                    ),
                )
            )
    grid = run_keyed(pairs, jobs=jobs, cache=cache)
    results = {}
    for gap in gaps:
        config, n_instructions = configs[gap]
        seed = preset.seed
        overhead = grid[(gap, "picl")].normalized_to(grid[(gap, "ideal")]) - 1

        # Crash near the end of the run, when `gap + 1` epochs of undo
        # entries are live, and time the recovery scan. The crash harness
        # needs the live Simulation object afterwards (to recover from the
        # lost state), so these runs stay serial and uncached.
        crash_sim = Simulation(config, "picl", [benchmark], n_instructions, seed)
        crash_sim.run(crash_at_instructions=int(n_instructions * 0.95))
        crash_sim.system.crash()
        _image, _commit = crash_sim.scheme.recover()
        report = crash_sim.scheme.last_recovery_report
        cycles = recovery_latency_cycles(
            report, config.nvm, entry_bytes=crash_sim.scheme.log.entry_bytes
        )
        # Scale the recovery back to the paper-size system: log volume
        # (and so scan time) grows with the system scale.
        recovery_s = cycles * config.scale / (config.nvm.cpu_ghz * 1e9)

        results[gap] = {
            "overhead": overhead,
            "recovery_entries": report.entries_scanned,
            "recovery_cycles": cycles,
            "recovery_s_paper_scale": recovery_s,
            "availability": availability(recovery_s, SECONDS_PER_DAY),
            "effective_throughput": effective_throughput(
                max(overhead, 0.0), recovery_s, SECONDS_PER_DAY
            ),
        }
    return results


def format_result(results):
    """Render the study's rows as a text table."""
    rows = []
    for gap, row in sorted(results.items()):
        rows.append(
            [
                "gap=%d" % gap,
                row["overhead"] * 100,
                row["recovery_entries"],
                row["recovery_s_paper_scale"],
                row["availability"] * 100,
                row["effective_throughput"] * 100,
            ]
        )
    return format_table(
        ["ACS-gap", "ovh %", "entries", "recov s", "avail %", "thruput %"],
        rows,
    )


def main(argv=None):
    """Print the study for the preset named in argv."""
    argv = argv if argv is not None else sys.argv[1:]
    preset_name, jobs = parse_experiment_argv(argv)
    preset = get_preset(preset_name)
    print_header(
        "Recovery latency & availability vs ACS-gap (paper §IV-C; "
        "one-day MTBF)",
        preset,
        preset.config(),
    )
    print(format_result(measure(preset, jobs=jobs)))
    print()
    print("Longer gaps log more live entries and lengthen recovery 'by a")
    print("few multiples', but availability stays effectively flat — the")
    print("runtime overhead PiCL removes was the real cost.")


if __name__ == "__main__":
    main()
