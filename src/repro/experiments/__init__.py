"""Experiment harness: one module per figure/table of the paper.

Each ``figNN`` module exposes ``run(preset)`` returning a structured result
and ``main()`` printing the same rows/series the paper reports; the
benchmark suite under ``benchmarks/`` wraps these. ``presets`` centralizes
the system scale and instruction budgets; ``report`` holds the table
printers; ``calibrate`` is the tool used to tune the workload profiles.
"""

from repro.experiments.presets import Preset, get_preset


def parse_experiment_argv(argv):
    """Split an experiment ``main(argv)`` into ``(preset_name, jobs)``.

    Experiments historically took the preset name as a bare positional
    argument (``fig09.main(["quick"])``); ``--jobs N`` / ``--jobs=N`` now
    rides along in the same list. Both return values may be None (meaning:
    resolve from REPRO_PRESET / REPRO_JOBS).
    """
    preset = None
    jobs = None
    rest = iter(argv or [])
    for arg in rest:
        if arg == "--jobs":
            jobs = next(rest, None)
        elif arg.startswith("--jobs="):
            jobs = arg.split("=", 1)[1]
        elif preset is None:
            preset = arg
    return preset, jobs


__all__ = ["Preset", "get_preset", "parse_experiment_argv"]
