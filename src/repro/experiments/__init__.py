"""Experiment harness: one module per figure/table of the paper.

Each ``figNN`` module exposes ``run(preset)`` returning a structured result
and ``main()`` printing the same rows/series the paper reports; the
benchmark suite under ``benchmarks/`` wraps these. ``presets`` centralizes
the system scale and instruction budgets; ``report`` holds the table
printers; ``calibrate`` is the tool used to tune the workload profiles.
"""

from repro.experiments.presets import Preset, get_preset

__all__ = ["Preset", "get_preset"]
