"""Fig 14: observed epoch lengths when the target is very long (500 M).

Paper: with the default epoch length raised to 500 M instructions,
"500M-instruction epochs are only possible with Journaling and Shadow for
compute-bound workloads (e.g., gamess and povray). With other [workloads],
the effective epoch length hovers between 100M to 200M for Shadow and
less than 50M for Journaling. PiCL is not limited by hardware resources
but by memory storage for logging" — a 1 GB log sustains 500 M epochs for
every tested workload. Higher is better; values are reported at paper
scale (instructions).
"""

import dataclasses
import sys

from repro.common.units import GB
from repro.experiments import parse_experiment_argv
from repro.experiments.presets import get_preset
from repro.experiments.report import format_table, geomean, print_header
from repro.sim.parallel import ResultCache, RunPoint, run_keyed
from repro.trace.profiles import BENCHMARKS

SCHEMES = ("journaling", "shadow", "picl")

#: The paper raises the target from 30 M to 500 M instructions.
TARGET_INSTRUCTIONS = 500_000_000

#: "A 1GB log storage is sufficient" — PiCL's cap in this study.
PICL_LOG_CAP = 1 * GB

#: Epoch intervals simulated per benchmark (the paper runs SimPoint traces;
#: one long epoch per benchmark keeps this tractable — forced commits
#: shorten the observed epoch *within* the interval).
EPOCHS = 1


def run(preset=None, benchmarks=None, jobs=None, cache=None):
    """Returns {benchmark: {scheme: observed_epoch_instructions_at_paper_scale}}."""
    preset = get_preset(preset)
    base = preset.config()
    config = dataclasses.replace(
        base, epoch_instructions=TARGET_INSTRUCTIONS // base.scale
    )
    config.picl = dataclasses.replace(
        config.picl, log_max_bytes=PICL_LOG_CAP // base.scale
    )
    n_instructions = config.epoch_instructions * EPOCHS
    benchmarks = benchmarks if benchmarks is not None else BENCHMARKS
    if cache is None:
        cache = ResultCache.from_env()
    pairs = []
    for index, benchmark in enumerate(benchmarks):
        seed = preset.seed + index * 7919
        for scheme in SCHEMES:
            pairs.append(
                (
                    (benchmark, scheme),
                    RunPoint.single(config, scheme, benchmark, n_instructions, seed),
                )
            )
    results = run_keyed(pairs, jobs=jobs, cache=cache)
    return {
        benchmark: {
            scheme: results[(benchmark, scheme)].observed_epoch_instructions
            * base.scale
            for scheme in SCHEMES
        }
        for benchmark in benchmarks
    }


def format_result(observed):
    """Render the figure\'s rows as a text table."""
    rows = [
        [benchmark] + [row[scheme] / 1e6 for scheme in SCHEMES]
        for benchmark, row in observed.items()
    ]
    rows.append(
        ["GMean"]
        + [
            geomean(row[scheme] for row in observed.values()) / 1e6
            for scheme in SCHEMES
        ]
    )
    return format_table(
        ["benchmark"] + ["%s (M)" % s for s in SCHEMES], rows, col_width=14
    )


def main(argv=None):
    """Print the figure for the preset named in argv."""
    argv = argv if argv is not None else sys.argv[1:]
    preset_name, jobs = parse_experiment_argv(argv)
    preset = get_preset(preset_name)
    print_header(
        "Fig 14: observed epoch length (M instructions at paper scale) with "
        "a 500M target (higher is better)",
        preset,
        preset.config(),
    )
    print(format_result(run(preset, jobs=jobs)))


if __name__ == "__main__":
    main()
