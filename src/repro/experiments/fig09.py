"""Fig 9: single-core total execution time, normalized to Ideal NVM.

Paper: across SPEC CPU2006, prior work slows execution by up to ~10.7x
(Journaling on fast, overflow-prone benchmarks) while "PiCL provides crash
consistency with almost no overhead" — only rare cases like sphinx3 lose
1-2% to undo-buffer flushes blocking other requests. Lower is better.
"""

import sys

from repro.experiments import parse_experiment_argv
from repro.experiments.presets import get_preset
from repro.experiments.report import format_table, geomean, print_header
from repro.sim.parallel import ResultCache, RunPoint, run_keyed
from repro.trace.profiles import BENCHMARKS

#: The schemes Fig 9 plots, in its legend order.
SCHEMES = ("journaling", "shadow", "frm", "thynvm", "picl")

#: The banner both ``repro fig09`` and ``repro submit fig09`` print.
TITLE = (
    "Fig 9: single-core execution time normalized to Ideal NVM "
    "(lower is better)"
)


def points(preset=None, benchmarks=None, epochs=None):
    """The figure's grid as ``((benchmark, scheme), RunPoint)`` pairs.

    This is the unit the sweep service schedules: a whole figure
    submitted as one batch (see :mod:`repro.experiments.batches`).
    """
    preset = get_preset(preset)
    config = preset.config()
    n_instructions = preset.instructions(config, epochs)
    benchmarks = benchmarks if benchmarks is not None else BENCHMARKS
    pairs = []
    for index, benchmark in enumerate(benchmarks):
        seed = preset.seed + index * 7919
        for scheme in ("ideal",) + SCHEMES:
            pairs.append(
                (
                    (benchmark, scheme),
                    RunPoint.single(config, scheme, benchmark, n_instructions, seed),
                )
            )
    return pairs


def tabulate(results):
    """``{(benchmark, scheme): result}`` -> the figure's normalized rows."""
    benchmarks = []
    for benchmark, _scheme in results:
        if benchmark not in benchmarks:
            benchmarks.append(benchmark)
    normalized = {}
    for benchmark in benchmarks:
        ideal = results[(benchmark, "ideal")]
        normalized[benchmark] = {
            scheme: results[(benchmark, scheme)].normalized_to(ideal)
            for scheme in SCHEMES
        }
    return normalized


def run(preset=None, benchmarks=None, epochs=None, jobs=None, cache=None):
    """Returns {benchmark: {scheme: normalized_execution_time}}."""
    if cache is None:
        cache = ResultCache.from_env()
    pairs = points(preset, benchmarks=benchmarks, epochs=epochs)
    return tabulate(run_keyed(pairs, jobs=jobs, cache=cache))


def add_gmean(normalized):
    """Append the GMean row the figure reports."""
    gmean_row = {
        scheme: geomean(row[scheme] for row in normalized.values())
        for scheme in SCHEMES
    }
    return gmean_row


def format_result(normalized):
    """Render the figure\'s rows as a text table."""
    rows = [
        [benchmark] + [row[scheme] for scheme in SCHEMES]
        for benchmark, row in normalized.items()
    ]
    gmean_row = add_gmean(normalized)
    rows.append(["GMean"] + [gmean_row[scheme] for scheme in SCHEMES])
    return format_table(["benchmark"] + list(SCHEMES), rows)


def main(argv=None):
    """Print the figure for the preset (and --jobs) named in argv."""
    argv = argv if argv is not None else sys.argv[1:]
    preset_name, jobs = parse_experiment_argv(argv)
    preset = get_preset(preset_name)
    print_header(TITLE, preset, preset.config())
    print(format_result(run(preset, jobs=jobs)))


if __name__ == "__main__":
    main()
