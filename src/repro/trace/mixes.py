"""Table V: the eight-benchmark multiprogram mixes W0-W7.

The paper draws these randomly once and fixes them; we reproduce the exact
table so Fig 10 runs the same mixes.
"""

from repro.trace.profiles import get_profile

#: Table V of the paper, verbatim.
MULTIPROGRAM_MIXES = {
    "W0": ["h264ref", "soplex", "hmmer", "bzip2", "gcc", "sjeng", "perlbench", "hmmer"],
    "W1": ["gcc", "gobmk", "gcc", "soplex", "bzip2", "gamess", "tonto", "gcc"],
    "W2": ["bzip2", "lbm", "gobmk", "perlbench", "cactusADM", "bzip2", "h264ref", "mcf"],
    "W3": ["gcc", "bzip2", "tonto", "cactusADM", "astar", "bzip2", "namd", "zeusmp"],
    "W4": ["perlbench", "wrf", "gobmk", "gcc", "namd", "gobmk", "milc", "bzip2"],
    "W5": ["omnetpp", "bzip2", "bzip2", "gobmk", "sjeng", "perlbench", "bzip2", "gobmk"],
    "W6": ["gcc", "tonto", "gamess", "cactusADM", "dealII", "gobmk", "omnetpp", "bzip2"],
    "W7": ["gcc", "wrf", "gcc", "bzip2", "gamess", "gromacs", "gcc", "perlbench"],
}


def mix_names():
    """The mix identifiers in Fig 10's order."""
    return sorted(MULTIPROGRAM_MIXES)


def mix_profiles(mix_name):
    """Return the eight :class:`WorkloadProfile` objects of a mix."""
    return [get_profile(name) for name in MULTIPROGRAM_MIXES[mix_name]]
