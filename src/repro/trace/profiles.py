"""Per-benchmark workload profiles.

Each SPEC CPU2006 benchmark from the paper's Fig 9/11/12 gets a profile
describing the memory behaviour that checkpointing overheads depend on.
The parameter values encode the well-documented character of each
benchmark (and the paper's own commentary — e.g. "workloads with less
spatial locality like astar are neither suitable for Journal nor
Shadow-Paging", "workloads with sequential write traffic (e.g., mcf) favor
Shadow-Paging", "compute intensive workloads [have a] small write set"):

* ``mem_ratio`` — memory references per instruction.
* ``write_frac`` — fraction of references that are stores.
* ``working_set_bytes`` — resident set the trace cycles through, at the
  paper's full scale (scaled down together with the caches by presets).
* ``seq_frac`` — fraction of references issued by sequential streams
  (high for streaming FP codes; gives page-level spatial locality).
* ``chase_frac`` — fraction issued by a pointer-chase component (uniform
  random over the working set; destroys spatial locality).
* ``zipf_alpha`` — skew of the reuse component covering the remaining
  fraction (hotter means a smaller effective write set).

The absolute values are calibrated, not measured; EXPERIMENTS.md records
how well the resulting figure shapes track the paper.
"""

import dataclasses

from repro.common.errors import ConfigurationError
from repro.common.units import KB, MB


@dataclasses.dataclass(frozen=True)
class WorkloadProfile:
    """Synthetic stand-in for one SPEC CPU2006 benchmark."""

    name: str
    mem_ratio: float
    write_frac: float
    working_set_bytes: int
    seq_frac: float
    chase_frac: float
    zipf_alpha: float
    category: str
    #: Consecutive references landing in one line before the sequential
    #: stream advances (word-granular walks touch a 64 B line ~8 times).
    seq_run: int = 8

    #: Extra probability that a *store* is drawn from the sequential stream
    #: (0 = stores follow the same mix as loads; near 1 = stores stream).
    #: This captures workloads whose write traffic is sequential even when
    #: their read traffic is scattered — the paper singles out mcf:
    #: "workloads with sequential write traffic (e.g., mcf) favor
    #: Shadow-Paging".
    write_seq_bias: float = 0.0

    #: Extra probability that a *store* is drawn from the hot (zipfian)
    #: component. Programs rewrite a much smaller set of locations than
    #: they read (stacks, accumulators, in-place updates), which is what
    #: keeps compute-bound write sets inside the translation tables
    #: ("the write set is small for compute intensive workloads and the
    #: translation table can track them quite consistently").
    write_zipf_bias: float = 0.0

    def __post_init__(self):
        if not 0.0 < self.mem_ratio <= 1.0:
            raise ConfigurationError("mem_ratio must be in (0, 1]")
        if not 0.0 <= self.write_frac <= 1.0:
            raise ConfigurationError("write_frac must be in [0, 1]")
        if self.seq_frac + self.chase_frac > 1.0:
            raise ConfigurationError("seq_frac + chase_frac must be <= 1")
        if self.working_set_bytes <= 0:
            raise ConfigurationError("working set must be positive")
        if self.write_seq_bias + self.write_zipf_bias > 1.0:
            raise ConfigurationError("write biases must sum to <= 1")

    def scaled(self, scale):
        """Return a copy with the working set divided by ``scale``.

        Presets scale the whole system (caches, tables, epochs, working
        sets) by one factor so that the paper's capacity ratios survive.
        """
        shrunk = max(2 * KB, self.working_set_bytes // scale)
        return dataclasses.replace(self, working_set_bytes=shrunk)


def _p(name, mem_ratio, write_frac, ws, seq, chase, alpha, category, sb=0.0, zb=0.0):
    return WorkloadProfile(
        name,
        mem_ratio,
        write_frac,
        ws,
        seq,
        chase,
        alpha,
        category,
        write_seq_bias=sb,
        write_zipf_bias=zb,
    )


#: The 29 benchmarks appearing across Fig 9, Fig 11, and Table V.
_PROFILES = [
    # --- integer, pointer-heavy / low spatial locality ------------------
    _p("astar", 0.32, 0.32, 64 * MB, 0.05, 0.60, 0.60, "pointer", zb=0.75),
    _p("omnetpp", 0.34, 0.34, 64 * MB, 0.05, 0.55, 0.70, "pointer", zb=0.70),
    _p("xalancbmk", 0.33, 0.30, 64 * MB, 0.10, 0.50, 0.80, "pointer", zb=0.70),
    _p("mcf", 0.40, 0.28, 64 * MB, 0.45, 0.35, 0.60, "memory", sb=0.85, zb=0.15),
    _p("soplex", 0.35, 0.25, 48 * MB, 0.30, 0.30, 0.80, "memory", sb=0.50, zb=0.45),
    _p("sphinx3", 0.33, 0.15, 32 * MB, 0.35, 0.25, 0.90, "memory", sb=0.40, zb=0.55),
    # --- integer, cache-friendly ----------------------------------------
    _p("bzip2", 0.26, 0.28, 8 * MB, 0.30, 0.10, 1.35, "mixed", sb=0.25, zb=0.65),
    _p("gcc", 0.28, 0.30, 16 * MB, 0.20, 0.12, 1.35, "mixed", sb=0.25, zb=0.65),
    _p("gobmk", 0.22, 0.25, 1 * MB, 0.10, 0.20, 1.20, "compute", zb=0.50),
    _p("h264ref", 0.24, 0.22, 1 * MB, 0.35, 0.10, 1.30, "compute", zb=0.50),
    _p("hmmer", 0.28, 0.30, 512 * KB, 0.40, 0.05, 1.40, "compute", zb=0.50),
    _p("perlbench", 0.26, 0.30, 8 * MB, 0.15, 0.12, 1.30, "mixed", sb=0.25, zb=0.65),
    _p("sjeng", 0.20, 0.22, 2 * MB, 0.05, 0.25, 1.20, "compute", zb=0.50),
    _p("libquantum", 0.30, 0.25, 32 * MB, 0.90, 0.02, 0.50, "stream", sb=0.85, zb=0.15),
    # --- floating point, streaming --------------------------------------
    _p("bwaves", 0.36, 0.25, 48 * MB, 0.80, 0.05, 0.60, "stream", sb=0.85, zb=0.15),
    _p("cactusADM", 0.32, 0.28, 32 * MB, 0.70, 0.10, 0.70, "stream", sb=0.85, zb=0.15),
    _p("calculix", 0.18, 0.18, 1 * MB, 0.50, 0.05, 1.20, "compute", zb=0.50),
    _p("dealII", 0.24, 0.22, 12 * MB, 0.30, 0.15, 1.20, "mixed", sb=0.25, zb=0.65),
    _p("gamess", 0.12, 0.15, 256 * KB, 0.30, 0.05, 1.50, "compute", zb=0.50),
    _p("GemsFDTD", 0.35, 0.28, 48 * MB, 0.75, 0.08, 0.60, "stream", sb=0.85, zb=0.15),
    _p("gromacs", 0.16, 0.18, 512 * KB, 0.40, 0.05, 1.30, "compute", zb=0.50),
    _p("lbm", 0.38, 0.40, 48 * MB, 0.90, 0.02, 0.50, "stream", sb=0.85, zb=0.15),
    _p("leslie3d", 0.34, 0.28, 48 * MB, 0.80, 0.05, 0.60, "stream", sb=0.85, zb=0.15),
    _p("milc", 0.36, 0.30, 48 * MB, 0.70, 0.10, 0.60, "stream", sb=0.85, zb=0.15),
    _p("namd", 0.14, 0.15, 512 * KB, 0.35, 0.05, 1.40, "compute", zb=0.50),
    _p("povray", 0.10, 0.12, 256 * KB, 0.20, 0.10, 1.50, "compute", zb=0.50),
    _p("tonto", 0.15, 0.18, 512 * KB, 0.30, 0.08, 1.40, "compute", zb=0.50),
    _p("wrf", 0.28, 0.24, 24 * MB, 0.65, 0.08, 0.80, "stream", sb=0.85, zb=0.15),
    _p("zeusmp", 0.30, 0.26, 32 * MB, 0.70, 0.08, 0.70, "stream", sb=0.85, zb=0.15),
]

_BY_NAME = {profile.name.lower(): profile for profile in _PROFILES}

#: Benchmark names in the paper's Fig 9 x-axis order (integer then FP).
BENCHMARKS = [profile.name for profile in _PROFILES]

#: The 13 benchmarks Fig 12 selects for the IOPS breakdown.
FIG12_BENCHMARKS = [
    "astar",
    "bzip2",
    "gcc",
    "gobmk",
    "h264ref",
    "mcf",
    "perlbench",
    "lbm",
    "leslie3d",
    "milc",
    "namd",
    "sphinx3",
    "libquantum",
]


def get_profile(name):
    """Look up a profile by benchmark name (case-insensitive)."""
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        raise KeyError(
            "unknown benchmark %r; known: %s" % (name, ", ".join(BENCHMARKS))
        ) from None
