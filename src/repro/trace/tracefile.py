"""Trace record/replay.

Synthetic traces are deterministic given a seed, but shipping the exact
reference stream matters when comparing across machines or against other
simulators. A trace file is a compact ``.npz`` holding three parallel
arrays (gaps, line addresses, write flags) plus the generating metadata.

::

    trace = make_trace(get_profile("gcc"), 1_000_000)
    save_trace("gcc.npz", trace)
    replay = load_trace("gcc.npz")          # a drop-in trace object
    Simulation(...).traces[0] = replay      # or drive it manually
"""

import numpy as np

from repro.common.errors import ConfigurationError
from repro.trace.synthetic import TraceChunk

_FORMAT_VERSION = 1


class RecordedTrace:
    """A materialized trace, API-compatible with SyntheticTrace."""

    def __init__(self, gaps, addrs, writes, n_instructions, source=""):
        if not (len(gaps) == len(addrs) == len(writes)):
            raise ConfigurationError("trace arrays must have equal length")
        self.gaps = np.asarray(gaps, dtype=np.int64)
        self.addrs = np.asarray(addrs, dtype=np.int64)
        self.writes = np.asarray(writes, dtype=bool)
        self.n_instructions = int(n_instructions)
        self.source = source

    def __len__(self):
        return len(self.gaps)

    @property
    def expected_refs(self):
        """Exact reference count (the trace is materialized)."""
        return len(self.gaps)

    def chunks(self, chunk_refs=8192):
        """Yield TraceChunks exactly as the generator would."""
        for start in range(0, len(self.gaps), chunk_refs):
            end = start + chunk_refs
            gaps = self.gaps[start:end]
            yield TraceChunk(
                gaps.tolist(),
                self.addrs[start:end].tolist(),
                self.writes[start:end].tolist(),
                int(gaps.sum()) + len(gaps),
            )


def record_trace(trace):
    """Materialize any trace (drains its chunks) into a RecordedTrace."""
    gaps, addrs, writes = [], [], []
    for chunk in trace.chunks():
        gaps.extend(chunk.gaps)
        addrs.extend(chunk.addrs)
        writes.extend(chunk.writes)
    source = getattr(getattr(trace, "profile", None), "name", "")
    return RecordedTrace(gaps, addrs, writes, trace.n_instructions, source)


def save_trace(path, trace):
    """Record ``trace`` and write it as a compressed .npz file."""
    recorded = trace if isinstance(trace, RecordedTrace) else record_trace(trace)
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        gaps=recorded.gaps,
        addrs=recorded.addrs,
        writes=recorded.writes,
        n_instructions=np.int64(recorded.n_instructions),
        source=np.str_(recorded.source),
    )
    return recorded


def load_trace(path):
    """Load a trace file saved by :func:`save_trace`."""
    with np.load(path, allow_pickle=False) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise ConfigurationError(
                "trace file version %d unsupported (expected %d)"
                % (version, _FORMAT_VERSION)
            )
        return RecordedTrace(
            data["gaps"],
            data["addrs"],
            data["writes"],
            int(data["n_instructions"]),
            str(data["source"]),
        )
