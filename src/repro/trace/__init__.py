"""Workload substrate: synthetic traces standing in for SPEC CPU2006.

The paper drives its simulator with Pin-captured SPEC CPU2006 traces
(SimPoint regions). Those traces are proprietary, so this package builds the
closest synthetic equivalent: per-benchmark *profiles* capturing the
characteristics the checkpointing overheads actually depend on — memory
intensity, store fraction, working-set size, spatial locality, and reuse
skew — and generators that turn a profile into a deterministic stream of
``(gap, address, is_write)`` memory references.

See DESIGN.md §2 for why this substitution preserves the paper's behaviour.
"""

from repro.trace.mixes import MULTIPROGRAM_MIXES, mix_names, mix_profiles
from repro.trace.profiles import (
    BENCHMARKS,
    FIG12_BENCHMARKS,
    WorkloadProfile,
    get_profile,
)
from repro.trace.synthetic import (
    MaterializedTrace,
    SyntheticTrace,
    TraceChunk,
    clear_trace_memo,
    make_trace,
)
from repro.trace.tracefile import (
    RecordedTrace,
    load_trace,
    record_trace,
    save_trace,
)

__all__ = [
    "WorkloadProfile",
    "BENCHMARKS",
    "FIG12_BENCHMARKS",
    "get_profile",
    "SyntheticTrace",
    "MaterializedTrace",
    "TraceChunk",
    "make_trace",
    "clear_trace_memo",
    "MULTIPROGRAM_MIXES",
    "mix_names",
    "mix_profiles",
    "RecordedTrace",
    "record_trace",
    "save_trace",
    "load_trace",
]
