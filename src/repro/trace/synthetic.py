"""Synthetic trace generation.

A trace is a deterministic stream of memory references, delivered in numpy
chunks for generation speed and consumed one reference at a time by the
simulator. Each reference is ``(gap, line_addr, is_write)`` where ``gap``
is the number of non-memory instructions preceding it (the in-order core
charges them one cycle each, per Table IV's "CPI 1 non-memory
instructions").

Three address components are mixed per the profile's fractions:

* a **sequential streamer** walking the working set line by line (spatial
  locality: consecutive references fill NVM rows and page-granularity
  translation entries),
* a **pointer chaser** sampling lines uniformly (no locality), and
* a **zipfian reuse** component sampling lines with configurable skew
  (temporal locality: a hot subset absorbs most references).

Hot zipfian lines are deliberately scattered across the address space so
temporal and spatial locality stay independent knobs.
"""

import numpy as np

from repro.common.address import LINE_SIZE
from repro.common.errors import ConfigurationError

#: Size of internally generated numpy batches.
CHUNK_REFS = 8192

#: Rank table cap for zipf sampling (beyond this, ranks alias).
_MAX_ZIPF_RANKS = 1 << 16


class TraceChunk:
    """One generated batch of references, as parallel Python lists."""

    __slots__ = ("gaps", "addrs", "writes", "instructions")

    def __init__(self, gaps, addrs, writes, instructions):
        self.gaps = gaps
        self.addrs = addrs
        self.writes = writes
        self.instructions = instructions

    def __len__(self):
        return len(self.gaps)


def _zipf_cdf(n_ranks, alpha):
    ranks = np.arange(1, n_ranks + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    return cdf


def _scatter(ranks, n_lines):
    """Map zipf ranks onto lines spread across the working set.

    Multiplying by a large odd constant modulo the line count permutes
    ranks pseudo-randomly, so the hottest lines are not also adjacent.
    """
    return (ranks * 2654435761) % n_lines


class SyntheticTrace:
    """Deterministic reference stream for one benchmark profile."""

    def __init__(self, profile, n_instructions, seed=0, addr_base=0):
        if n_instructions <= 0:
            raise ConfigurationError("n_instructions must be positive")
        self.profile = profile
        self.n_instructions = n_instructions
        self.addr_base = addr_base
        self._rng = np.random.default_rng(seed)
        self._n_lines = max(32, profile.working_set_bytes // LINE_SIZE)
        self._seq_pos = 0
        n_ranks = min(self._n_lines, _MAX_ZIPF_RANKS)
        self._zipf_cdf = _zipf_cdf(n_ranks, max(profile.zipf_alpha, 0.01))
        # Bias-redirected stores reuse a steeper distribution over the same
        # rank->line mapping: the write-hot set is a subset of the read-hot
        # set, just much smaller (see WorkloadProfile.write_zipf_bias).
        self._zipf_cdf_writes = _zipf_cdf(n_ranks, profile.zipf_alpha + 0.7)
        self._instructions_emitted = 0

    @property
    def expected_refs(self):
        """Approximate number of references the trace will emit."""
        return int(self.n_instructions * self.profile.mem_ratio)

    def chunks(self):
        """Yield :class:`TraceChunk` batches until the instruction budget ends."""
        profile = self.profile
        mem_ratio = profile.mem_ratio
        while self._instructions_emitted < self.n_instructions:
            n = CHUNK_REFS
            gaps = self._rng.geometric(mem_ratio, size=n) - 1
            writes = self._rng.random(n) < profile.write_frac
            addrs = self._make_addresses(n, writes)
            instructions = int(gaps.sum()) + n
            budget = self.n_instructions - self._instructions_emitted
            if instructions > budget:
                # Trim the chunk to the instruction budget.
                cumulative = np.cumsum(gaps + 1)
                cut = int(np.searchsorted(cumulative, budget, side="right")) + 1
                cut = max(1, min(cut, n))
                gaps = gaps[:cut]
                addrs = addrs[:cut]
                writes = writes[:cut]
                instructions = int(gaps.sum()) + cut
            self._instructions_emitted += instructions
            yield TraceChunk(
                gaps.tolist(), addrs.tolist(), writes.tolist(), instructions
            )

    def _make_addresses(self, n, writes):
        profile = self.profile
        n_lines = self._n_lines
        selector = self._rng.random(n)
        line_ids = np.empty(n, dtype=np.int64)

        seq_frac = profile.seq_frac
        chase_frac = profile.chase_frac
        seq_bias = profile.write_seq_bias
        zipf_bias = profile.write_zipf_bias
        if seq_bias > 0.0 or zipf_bias > 0.0:
            # Stores redistribute: ``seq_bias`` of the mass moves to the
            # sequential stream, ``zipf_bias`` to the hot set, and the rest
            # keeps the loads' proportions.
            remainder = 1.0 - seq_bias - zipf_bias
            seq_w = seq_bias + remainder * seq_frac
            chase_w = remainder * chase_frac
            seq_cut = np.where(writes, seq_w, seq_frac)
            chase_cut = seq_cut + np.where(writes, chase_w, chase_frac)
        else:
            seq_cut = seq_frac
            chase_cut = seq_frac + chase_frac

        seq_mask = selector < seq_cut
        chase_mask = (~seq_mask) & (selector < chase_cut)
        zipf_mask = ~(seq_mask | chase_mask)

        n_seq = int(seq_mask.sum())
        if n_seq:
            run = max(1, profile.seq_run)
            positions = self._seq_pos + np.arange(n_seq, dtype=np.int64)
            line_ids[seq_mask] = (positions // run) % n_lines
            self._seq_pos = (self._seq_pos + n_seq) % (n_lines * run)

        n_chase = int(chase_mask.sum())
        if n_chase:
            line_ids[chase_mask] = self._rng.integers(0, n_lines, size=n_chase)

        n_zipf = int(zipf_mask.sum())
        if n_zipf:
            uniform = self._rng.random(n_zipf)
            zipf_writes = writes[zipf_mask]
            ranks = np.where(
                zipf_writes,
                np.searchsorted(self._zipf_cdf_writes, uniform),
                np.searchsorted(self._zipf_cdf, uniform),
            )
            line_ids[zipf_mask] = _scatter(ranks.astype(np.int64), n_lines)

        return self.addr_base + line_ids * LINE_SIZE


def make_trace(profile, n_instructions, seed=0, addr_base=0):
    """Build a :class:`SyntheticTrace` for ``profile``.

    ``addr_base`` offsets the whole working set; multiprogram runs give each
    core a disjoint base so programs never share lines (SPEC rate-style).
    """
    return SyntheticTrace(profile, n_instructions, seed=seed, addr_base=addr_base)
