"""Synthetic trace generation.

A trace is a deterministic stream of memory references, delivered in numpy
chunks for generation speed and consumed one reference at a time by the
simulator. Each reference is ``(gap, line_addr, is_write)`` where ``gap``
is the number of non-memory instructions preceding it (the in-order core
charges them one cycle each, per Table IV's "CPI 1 non-memory
instructions").

Three address components are mixed per the profile's fractions:

* a **sequential streamer** walking the working set line by line (spatial
  locality: consecutive references fill NVM rows and page-granularity
  translation entries),
* a **pointer chaser** sampling lines uniformly (no locality), and
* a **zipfian reuse** component sampling lines with configurable skew
  (temporal locality: a hot subset absorbs most references).

Hot zipfian lines are deliberately scattered across the address space so
temporal and spatial locality stay independent knobs.

Two speed facilities live alongside the generator:

* **Batch metadata** (:meth:`TraceChunk.ensure_metadata`): cumulative
  instruction counts and same-line run lengths, computed lazily per chunk
  with numpy. The batched single-core interpreter uses them to place epoch
  and crash boundaries without per-reference checks and to coalesce
  same-line runs (see :mod:`repro.sim.simulator`).
* **Cross-scheme memoization** (:func:`make_trace`): figure sweeps drive
  the identical stream through every scheme at each (benchmark, config,
  seed) point, so generated chunks are memoized per process, keyed on
  ``(profile, n_instructions, seed, addr_base)``. Set
  ``REPRO_NO_TRACE_MEMO=1`` to force fresh generation every time.
"""

import collections
import os

import numpy as np

from repro.common.address import LINE_SIZE
from repro.common.errors import ConfigurationError

#: Size of internally generated numpy batches.
CHUNK_REFS = 8192

#: Rank table cap for zipf sampling (beyond this, ranks alias).
_MAX_ZIPF_RANKS = 1 << 16


def _run_ends_array(addrs):
    """Exclusive end of the same-line run starting at each index (numpy).

    ``breaks[i]`` is True when the run cannot extend past reference ``i``;
    ``run_ends[i]`` is then the nearest break at or after ``i``, plus one.
    """
    n = len(addrs)
    if n == 1:
        return np.ones(1, dtype=np.int64)
    breaks = np.empty(n, dtype=bool)
    breaks[:-1] = addrs[1:] != addrs[:-1]
    breaks[-1] = True
    ends = np.where(breaks, np.arange(1, n + 1), n)
    return np.minimum.accumulate(ends[::-1])[::-1]


def _run_cum_array(addrs):
    """Inclusive cumulative count of same-line run starts (numpy)."""
    n = len(addrs)
    starts = np.ones(n, dtype=np.int64)
    if n > 1:
        starts[1:] = addrs[1:] != addrs[:-1]
    return np.cumsum(starts)


class TraceChunk:
    """One generated batch of references, as parallel Python lists."""

    __slots__ = (
        "gaps",
        "addrs",
        "writes",
        "instructions",
        "cum_instructions",
        "run_ends",
        "run_cum",
        "write_cum",
        "_meta_arrays",
        "np_addrs",
        "np_writes",
    )

    def __init__(
        self, gaps, addrs, writes, instructions, meta_arrays=None, arrays=None
    ):
        self.gaps = gaps
        self.addrs = addrs
        self.writes = writes
        self.instructions = instructions
        #: Inclusive cumulative instruction count per reference (lazy).
        self.cum_instructions = None
        #: Per-index end (exclusive) of the same-line run starting there (lazy).
        self.run_ends = None
        #: Inclusive cumulative count of same-line run starts (lazy); the
        #: columnar interpreter's cost model is *coalescing groups*, not
        #: references, so it sizes bulk work by run count in O(1).
        self.run_cum = None
        #: Inclusive cumulative store count per reference (lazy).
        self.write_cum = None
        #: Precomputed (cum, run_ends, run_cum, write_cum) numpy arrays
        #: from the memo's frozen storage; ensure_metadata converts
        #: instead of recomputing (None for freshly generated chunks).
        self._meta_arrays = meta_arrays
        #: Numpy views of addrs/writes for the columnar interpreter;
        #: delivered by the generator/memo when it has them, otherwise
        #: built on demand by ensure_arrays.
        if arrays is not None:
            self.np_addrs, self.np_writes = arrays
        else:
            self.np_addrs = None
            self.np_writes = None

    def __len__(self):
        return len(self.gaps)

    def ensure_arrays(self):
        """Numpy addrs/writes for array-at-a-time classification (idempotent)."""
        if self.np_addrs is None:
            self.np_addrs = np.asarray(self.addrs, dtype=np.int64)
            self.np_writes = np.asarray(self.writes, dtype=bool)
        return self

    def ensure_metadata(self):
        """Compute the batch-interpreter metadata once (idempotent).

        ``cum_instructions[i]`` is the chunk-relative instruction count
        after reference ``i`` retires (``sum(gaps[:i+1]) + i + 1``), used
        to segment the chunk at epoch/crash boundaries. ``run_ends[i]`` is
        the exclusive end of the longest stretch ``i..run_ends[i]-1`` of
        references to one line address; ``run_cum[i]`` counts same-line
        run starts in ``0..i`` so a stretch's coalescing-group count is
        O(1); ``write_cum[i]`` counts stores in ``0..i`` so a run tail's
        load/store split is O(1). Memoized chunks carry the arrays
        precomputed (see :class:`_FrozenChunk`) and only pay the list
        conversion here.
        """
        if self.cum_instructions is not None:
            return self
        if self._meta_arrays is not None:
            cum, run_ends, run_cum, write_cum = self._meta_arrays
            self.cum_instructions = cum.tolist()
            self.run_ends = run_ends.tolist()
            self.run_cum = run_cum.tolist()
            self.write_cum = write_cum.tolist()
            return self
        gaps = np.asarray(self.gaps, dtype=np.int64)
        self.cum_instructions = np.cumsum(gaps + 1).tolist()
        writes = np.asarray(self.writes, dtype=np.int64)
        self.write_cum = np.cumsum(writes).tolist()
        addrs = np.asarray(self.addrs, dtype=np.int64)
        self.run_ends = _run_ends_array(addrs).tolist()
        self.run_cum = _run_cum_array(addrs).tolist()
        return self


def _zipf_cdf(n_ranks, alpha):
    ranks = np.arange(1, n_ranks + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    return cdf


def _scatter(ranks, n_lines):
    """Map zipf ranks onto lines spread across the working set.

    Multiplying by a large odd constant modulo the line count permutes
    ranks pseudo-randomly, so the hottest lines are not also adjacent.
    """
    return (ranks * 2654435761) % n_lines


class SyntheticTrace:
    """Deterministic reference stream for one benchmark profile."""

    def __init__(self, profile, n_instructions, seed=0, addr_base=0):
        if n_instructions <= 0:
            raise ConfigurationError("n_instructions must be positive")
        self.profile = profile
        self.n_instructions = n_instructions
        self.addr_base = addr_base
        self._rng = np.random.default_rng(seed)
        self._n_lines = max(32, profile.working_set_bytes // LINE_SIZE)
        self._seq_pos = 0
        n_ranks = min(self._n_lines, _MAX_ZIPF_RANKS)
        self._zipf_cdf = _zipf_cdf(n_ranks, max(profile.zipf_alpha, 0.01))
        # Bias-redirected stores reuse a steeper distribution over the same
        # rank->line mapping: the write-hot set is a subset of the read-hot
        # set, just much smaller (see WorkloadProfile.write_zipf_bias).
        self._zipf_cdf_writes = _zipf_cdf(n_ranks, profile.zipf_alpha + 0.7)
        self._instructions_emitted = 0

    @property
    def expected_refs(self):
        """Approximate number of references the trace will emit."""
        return int(self.n_instructions * self.profile.mem_ratio)

    def chunks(self):
        """Yield :class:`TraceChunk` batches until the instruction budget ends."""
        for gaps, addrs, writes, instructions in self._array_chunks():
            yield TraceChunk(
                gaps.tolist(),
                addrs.tolist(),
                writes.tolist(),
                instructions,
                arrays=(addrs, writes),
            )

    def _array_chunks(self):
        """Yield ``(gaps, addrs, writes, instructions)`` numpy batches.

        The memo freezes these arrays directly (no round trip through
        Python lists); :meth:`chunks` is the list-delivering wrapper the
        simulator consumes.
        """
        profile = self.profile
        mem_ratio = profile.mem_ratio
        while self._instructions_emitted < self.n_instructions:
            n = CHUNK_REFS
            gaps = self._rng.geometric(mem_ratio, size=n) - 1
            writes = self._rng.random(n) < profile.write_frac
            addrs = self._make_addresses(n, writes)
            instructions = int(gaps.sum()) + n
            budget = self.n_instructions - self._instructions_emitted
            if instructions > budget:
                # Trim the chunk to the instruction budget.
                cumulative = np.cumsum(gaps + 1)
                cut = int(np.searchsorted(cumulative, budget, side="right")) + 1
                cut = max(1, min(cut, n))
                gaps = gaps[:cut]
                addrs = addrs[:cut]
                writes = writes[:cut]
                instructions = int(gaps.sum()) + cut
            self._instructions_emitted += instructions
            yield gaps, addrs, writes, instructions

    def _make_addresses(self, n, writes):
        profile = self.profile
        n_lines = self._n_lines
        selector = self._rng.random(n)
        line_ids = np.empty(n, dtype=np.int64)

        seq_frac = profile.seq_frac
        chase_frac = profile.chase_frac
        seq_bias = profile.write_seq_bias
        zipf_bias = profile.write_zipf_bias
        if seq_bias > 0.0 or zipf_bias > 0.0:
            # Stores redistribute: ``seq_bias`` of the mass moves to the
            # sequential stream, ``zipf_bias`` to the hot set, and the rest
            # keeps the loads' proportions.
            remainder = 1.0 - seq_bias - zipf_bias
            seq_w = seq_bias + remainder * seq_frac
            chase_w = remainder * chase_frac
            seq_cut = np.where(writes, seq_w, seq_frac)
            chase_cut = seq_cut + np.where(writes, chase_w, chase_frac)
        else:
            seq_cut = seq_frac
            chase_cut = seq_frac + chase_frac

        seq_mask = selector < seq_cut
        chase_mask = (~seq_mask) & (selector < chase_cut)
        zipf_mask = ~(seq_mask | chase_mask)

        n_seq = int(seq_mask.sum())
        if n_seq:
            run = max(1, profile.seq_run)
            positions = self._seq_pos + np.arange(n_seq, dtype=np.int64)
            line_ids[seq_mask] = (positions // run) % n_lines
            self._seq_pos = (self._seq_pos + n_seq) % (n_lines * run)

        n_chase = int(chase_mask.sum())
        if n_chase:
            line_ids[chase_mask] = self._rng.integers(0, n_lines, size=n_chase)

        n_zipf = int(zipf_mask.sum())
        if n_zipf:
            uniform = self._rng.random(n_zipf)
            zipf_writes = writes[zipf_mask]
            ranks = np.where(
                zipf_writes,
                np.searchsorted(self._zipf_cdf_writes, uniform),
                np.searchsorted(self._zipf_cdf, uniform),
            )
            line_ids[zipf_mask] = _scatter(ranks.astype(np.int64), n_lines)

        return self.addr_base + line_ids * LINE_SIZE


class _FrozenChunk:
    """Memoized chunk storage: compact numpy arrays, nothing boxed.

    Holding generated streams as Python lists would keep millions of boxed
    ints resident for the life of the process, and that residency measurably
    degrades allocator/cache locality for *every subsequent simulation*
    (~20% on the throughput harness). Numpy arrays are contiguous, 8 bytes
    per element, and invisible to the GC, so a frozen trace costs only its
    raw bytes. The batch-interpreter metadata is computed here once, on the
    arrays; :meth:`thaw` delivers a list-backed :class:`TraceChunk` whose
    lists are transient (they die with the chunk after it is consumed).
    """

    __slots__ = (
        "gaps",
        "addrs",
        "writes",
        "instructions",
        "cum",
        "run_ends",
        "run_cum",
        "write_cum",
    )

    def __init__(self, gaps, addrs, writes, instructions):
        self.gaps = gaps
        self.addrs = addrs
        self.writes = writes
        self.instructions = instructions
        self.cum = np.cumsum(gaps + 1)
        self.write_cum = np.cumsum(writes.astype(np.int64))
        self.run_ends = _run_ends_array(addrs)
        self.run_cum = _run_cum_array(addrs)

    def __len__(self):
        return len(self.gaps)

    def thaw(self):
        """Materialize the list-backed chunk the simulator consumes."""
        return TraceChunk(
            self.gaps.tolist(),
            self.addrs.tolist(),
            self.writes.tolist(),
            self.instructions,
            meta_arrays=(self.cum, self.run_ends, self.run_cum, self.write_cum),
            arrays=(self.addrs, self.writes),
        )


class MaterializedTrace:
    """A replayable trace over memoized frozen chunks.

    API-compatible with :class:`SyntheticTrace` for every consumer (the
    simulator, calibration, record/replay); unlike the generator its
    :meth:`chunks` can be drained any number of times. Memo hits share the
    frozen storage; each replay thaws its own transient chunks.
    """

    def __init__(self, profile, n_instructions, addr_base, chunks):
        self.profile = profile
        self.n_instructions = n_instructions
        self.addr_base = addr_base
        self._chunks = chunks

    @property
    def expected_refs(self):
        """Same estimate SyntheticTrace reports (consumers see no change)."""
        return int(self.n_instructions * self.profile.mem_ratio)

    def chunks(self):
        """Yield freshly thawed :class:`TraceChunk` batches, in order."""
        for frozen in self._chunks:
            yield frozen.thaw()


#: Per-trace memoization cap: streams expected to exceed this many
#: references are generated fresh (never held resident) to bound memory.
_TRACE_MEMO_MAX_REFS = 2_000_000

#: Total references held across all memoized traces; least-recently-used
#: streams are evicted past this.
_TRACE_MEMO_TOTAL_REFS = 4_000_000

#: key -> (chunk list, reference count), LRU order. Per-process: parallel
#: sweep workers each keep their own memo (see repro.sim.parallel, which
#: groups same-trace points onto one worker so the memo actually hits).
_trace_memo = collections.OrderedDict()


def clear_trace_memo():
    """Drop every memoized trace (tests, memory pressure)."""
    _trace_memo.clear()


def make_trace(profile, n_instructions, seed=0, addr_base=0):
    """Build the reference stream for ``profile``.

    ``addr_base`` offsets the whole working set; multiprogram runs give each
    core a disjoint base so programs never share lines (SPEC rate-style).

    Generated chunks are memoized per process under
    ``(profile, n_instructions, seed, addr_base)``: every figure drives the
    identical stream through six schemes, so five of the six generations
    (and their batch-metadata passes) are saved. The stream itself is
    bit-identical either way — memo hits replay the very chunks a fresh
    generator would emit. ``REPRO_NO_TRACE_MEMO=1`` disables memoization;
    traces expected to exceed ``_TRACE_MEMO_MAX_REFS`` references bypass it
    to bound resident memory.
    """
    if os.environ.get("REPRO_NO_TRACE_MEMO"):
        return SyntheticTrace(profile, n_instructions, seed=seed, addr_base=addr_base)
    if n_instructions > 0 and int(n_instructions * profile.mem_ratio) > _TRACE_MEMO_MAX_REFS:
        return SyntheticTrace(profile, n_instructions, seed=seed, addr_base=addr_base)
    key = (profile, n_instructions, seed, addr_base)
    entry = _trace_memo.get(key)
    if entry is None:
        source = SyntheticTrace(
            profile, n_instructions, seed=seed, addr_base=addr_base
        )
        chunks = [
            _FrozenChunk(gaps, addrs, writes, instructions)
            for gaps, addrs, writes, instructions in source._array_chunks()
        ]
        refs = sum(len(chunk) for chunk in chunks)
        _trace_memo[key] = (chunks, refs)
        total = sum(held for _chunks, held in _trace_memo.values())
        while total > _TRACE_MEMO_TOTAL_REFS and len(_trace_memo) > 1:
            _evicted, (_dropped, held) = _trace_memo.popitem(last=False)
            total -= held
    else:
        chunks, _refs = entry
        _trace_memo.move_to_end(key)
    return MaterializedTrace(profile, n_instructions, addr_base, chunks)
